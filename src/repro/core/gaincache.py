"""Cross-query what-if gain cache (the incremental profiling pipeline).

COLT's dominant overhead is what-if optimization.  The per-query
:class:`~repro.optimizer.optimizer.PlanCache` already amortizes probes
*within* one query; this module amortizes them *across* queries: a gain
that is knowable without invoking the extended optimizer is served from
the cache, and the saved call never reaches
:attr:`~repro.optimizer.whatif.WhatIfOptimizer.call_count` (the quantity
the ledger charges per call).

The cache only ever serves values that are **provably identical** to
what the probe would return, which is what lets the differential harness
(``tests/core/test_gaincache_differential.py``) demand bit-identical
``BenefitH``/``BenefitM`` and chosen ``M`` between cache-on and
cache-off runs.  Two hit kinds qualify:

* **structural** -- the probed index's lead column is not referenced by
  any filter or join predicate of the query.  The optimizer's
  relevant-configuration restriction strips such an index before
  planning, so both sides of ``QueryGain = cost(M − {I}) − cost(M ∪
  {I})`` collapse to the same plan and the gain is exactly ``0.0``.
  Every query in a cluster shares its referenced-column set (the
  cluster key is built from exactly these columns), so this rule is the
  cluster-level zero-gain memo the clustering of §4.1 promises.
* **exact** -- a previous probe stored a gain under the same (query
  structural signature including literals, relevant-config signature,
  index) key, and the per-table statistics tokens recorded with the
  entry still match the catalog.  The optimizer is deterministic, so
  the replayed gain is the probe's.

Budget semantics: a hit still consumes one ``#WI_lim`` unit in the
Profiler (so sampling decisions -- and therefore the collected gain
samples -- are identical with the cache on or off), but it is *free* on
the ledger: no what-if call is issued, no ``whatif_call_cost`` is
charged.  See ``docs/PERFORMANCE.md``.

Invalidation (a stale gain would silently corrupt ``NetBenefit``):

* **materialization changes** -- entries whose query references the
  changed index's lead column are dropped (the Scheduler reports every
  build/drop, including idle-time and retried builds, through its
  ``on_change`` hook).  Lookups are additionally self-validating: the
  relevant-config signature is recomputed per query, so a changed
  configuration can never alias a stored key.
* **stats refresh** -- entries carry per-table ``(row_count,
  stats_version)`` tokens, validated on every hit.  Every
  stats-affecting catalog mutation bumps the version
  (:meth:`~repro.engine.catalog.Catalog.set_stats`,
  :meth:`~repro.engine.catalog.Catalog.apply_row_delta`,
  :meth:`~repro.engine.catalog.Catalog.set_row_count`), so even a
  delete-then-insert that restores the original row count changes the
  token; ``process_insert`` additionally invalidates the written table
  eagerly.
* **epoch reorganization** -- :meth:`GainCache.roll_epoch` ages entries
  out after ``ttl_epochs`` epochs without a hit.
* **fleet rebalance** -- the coordinator clears each replica's cache
  when sticky assignments move between replicas.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.obs.names import GAINCACHE_METRICS
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.sql.ast import (
    BetweenPredicate,
    ComparisonPredicate,
    InPredicate,
    Query,
)

# Composite-safe index identity: table plus ordered key columns.
IndexKey = Tuple[str, Tuple[str, ...]]

#: Per-table statistics token: (row_count, stats_version) for the local
#: backend, opaque for remote ones.  Every stats-affecting mutation --
#: row-count deltas (cost-model inserts/deletes) and ``set_stats``
#: (ANALYZE) -- bumps the version, so entries recorded under old
#: statistics can never validate, even when the row count round-trips.
StatsToken = Tuple


def _index_key(index: IndexDef) -> IndexKey:
    return index.table, index.columns


def _literal(value: object) -> Tuple[str, object]:
    # Type-tagged so 1 and 1.0 (equal, same hash) stay distinct keys.
    return type(value).__name__, value


def query_signature(query: Query) -> Tuple:
    """A hashable structural signature of a bound query, literals included.

    Two queries with equal signatures produce identical plans and costs
    under equal configurations and statistics: the signature covers
    every Query field the optimizer reads (tables, output list, filter
    predicates with operators and literal values, join conditions,
    grouping, ordering, limit).  Field order is preserved -- no
    normalization -- so signature equality is structural identity, the
    conservative choice for an exactness-critical cache.
    """
    filters: List[Tuple] = []
    for pred in query.filters:
        if isinstance(pred, ComparisonPredicate):
            filters.append(
                ("cmp", str(pred.column), pred.op.value, _literal(pred.value))
            )
        elif isinstance(pred, BetweenPredicate):
            filters.append(
                (
                    "between",
                    str(pred.column),
                    _literal(pred.low),
                    _literal(pred.high),
                )
            )
        elif isinstance(pred, InPredicate):
            filters.append(
                ("in", str(pred.column), tuple(_literal(v) for v in pred.values))
            )
        else:
            filters.append(("other", str(pred)))
    return (
        tuple(query.tables),
        tuple(str(item.expr) + (f" as {item.alias}" if item.alias else "") for item in query.select),
        tuple(filters),
        tuple(str(j.normalized()) for j in query.joins),
        tuple(str(c) for c in query.group_by),
        tuple((str(o.column), o.descending) for o in query.order_by),
        query.limit,
    )


def referenced_columns(query: Query) -> FrozenSet[Tuple[str, str]]:
    """(table, column) pairs referenced by filters or join predicates.

    This is the same set the optimizer's relevant-configuration
    restriction keys on, and (by construction of the cluster key) it is
    shared by every query of a cluster.
    """
    return frozenset(
        (c.table, c.column)
        for c in query.selection_columns() + query.join_columns()
    )


class _Entry:
    """One stored probe result."""

    __slots__ = ("gain", "tokens", "referenced", "last_used_epoch")

    def __init__(
        self,
        gain: float,
        tokens: Tuple[Tuple[str, StatsToken], ...],
        referenced: FrozenSet[Tuple[str, str]],
        epoch: int,
    ) -> None:
        self.gain = gain
        self.tokens = tokens
        self.referenced = referenced
        self.last_used_epoch = epoch


class GainCacheContext:
    """Per-query view of the cache (signatures computed once per query).

    Obtained from :meth:`GainCache.begin_query`; the Profiler calls
    :meth:`lookup` before each probe it is about to pay for and
    :meth:`store` after each probe it did pay for.
    """

    __slots__ = ("_cache", "_query", "referenced", "_qsig", "_csig", "_tokens")

    def __init__(self, cache: "GainCache", query: Query) -> None:
        self._cache = cache
        self._query = query
        self._qsig: Optional[Tuple] = None
        self._csig: Optional[FrozenSet[IndexKey]] = None
        self._tokens: Optional[Tuple[Tuple[str, StatsToken], ...]] = None
        # Batch priming (see GainCache.prime_batch): when the replay
        # driver announced this exact query object, its signature and
        # referenced-column set were computed once for the whole batch.
        # The identity check guards against id() reuse across batches.
        primed = cache._primed.get(id(query))
        if primed is not None and primed[0] is query:
            self._qsig = primed[1]
            self.referenced = primed[2]
        else:
            self.referenced = referenced_columns(query)

    # -- lazily computed key parts -------------------------------------
    def _key(self, index: IndexDef) -> Tuple:
        if self._qsig is None:
            self._qsig = query_signature(self._query)
        if self._csig is None:
            self._csig = self._cache.config_signature(self._query)
        return self._qsig, self._csig, _index_key(index)

    def tokens(self) -> Tuple[Tuple[str, StatsToken], ...]:
        """Current statistics tokens for the query's tables."""
        if self._tokens is None:
            self._tokens = tuple(
                (t, self._cache.stats_token(t)) for t in self._query.tables
            )
        return self._tokens

    # -- cache operations ----------------------------------------------
    def lookup(self, index: IndexDef) -> Optional[float]:
        """The exact gain a probe of ``index`` would return, if knowable.

        Returns None on a miss (the caller must probe for real).
        """
        cache = self._cache
        if (index.table, index.column) not in self.referenced:
            # Structural zero: the optimizer strips this index from the
            # relevant configuration, so the probe's two costs coincide.
            cache.hits_structural += 1
            cache._m_hits.inc(1, kind="structural")
            return 0.0
        entry = cache._entries.get(self._key(index))
        if entry is not None and entry.tokens == self.tokens():
            entry.last_used_epoch = cache._epoch
            cache.hits_exact += 1
            cache._m_hits.inc(1, kind="exact")
            return entry.gain
        cache.misses += 1
        cache._m_misses.inc()
        return None

    def store(self, index: IndexDef, gain: float) -> None:
        """Record a real probe's result for future exact-key hits."""
        cache = self._cache
        if len(cache._entries) >= cache.max_entries:
            cache._evict_oldest()
        cache._entries[self._key(index)] = _Entry(
            gain, self.tokens(), self.referenced, cache._epoch
        )
        cache.stores += 1
        cache._m_stores.inc()
        cache._sync_gauge()


class GainCache:
    """Cluster-level cross-query what-if gain cache.

    Args:
        catalog: Source of per-table statistics tokens.
        whatif: The what-if optimizer, used for relevant-configuration
            signatures (its underlying optimizer defines relevance).
        enabled: Master switch (``ColtConfig.gain_cache``); when False
            the Profiler never consults the cache, but the metric
            families are still registered so the observability contract
            holds in either mode.
        ttl_epochs: Epochs an entry may go unused before
            :meth:`roll_epoch` drops it.
        max_entries: Hard size cap; the least-recently-used entries are
            evicted on overflow.
        registry: Metrics registry for the ``gaincache_*`` families.

    Attributes:
        hits_structural / hits_exact / misses / stores: Plain counters
            mirroring the metric families, for tests and reports.
    """

    def __init__(
        self,
        catalog: Catalog,
        whatif,
        enabled: bool = False,
        ttl_epochs: int = 12,
        max_entries: int = 4096,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._catalog = catalog
        self._whatif = whatif
        self.enabled = enabled
        self.ttl_epochs = max(1, ttl_epochs)
        self.max_entries = max(1, max_entries)
        self._entries: Dict[Tuple, _Entry] = {}
        self._primed: Dict[int, Tuple[Query, Tuple, FrozenSet]] = {}
        self._epoch = 0
        self.hits_structural = 0
        self.hits_exact = 0
        self.misses = 0
        self.stores = 0
        self.invalidations = 0
        reg = registry or NULL_REGISTRY
        self._m_hits = GAINCACHE_METRICS["gaincache_hits_total"].build(reg)
        self._m_misses = GAINCACHE_METRICS["gaincache_misses_total"].build(reg)
        self._m_stores = GAINCACHE_METRICS["gaincache_stores_total"].build(reg)
        self._m_invalidations = GAINCACHE_METRICS[
            "gaincache_invalidations_total"
        ].build(reg)
        self._m_entries = GAINCACHE_METRICS["gaincache_entries"].build(reg)

    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        """Total gains served from the cache (both hit kinds)."""
        return self.hits_structural + self.hits_exact

    def __len__(self) -> int:
        return len(self._entries)

    def begin_query(self, query: Query) -> GainCacheContext:
        """Open a per-query cache view (signatures computed lazily, once)."""
        return GainCacheContext(self, query)

    def prime_batch(self, queries: Iterable[Query]) -> int:
        """Precompute signature work for a whole batch of queries.

        The replay driver's batched mode calls this once per chunk so
        the per-query contexts opened inside the chunk skip their
        ``query_signature`` / ``referenced_columns`` computation --
        duplicated query objects (the common case in a replayed stream,
        and guaranteed by :func:`~repro.core.batching.bind_batch`'s
        sharing) are computed exactly once.  Purely a precomputation:
        lookups, stores and invalidation behave bit-identically with or
        without priming.

        Returns:
            The number of distinct query objects primed.
        """
        primed: Dict[int, Tuple[Query, Tuple, FrozenSet]] = {}
        for query in queries:
            key = id(query)
            if key not in primed:
                primed[key] = (
                    query,
                    query_signature(query),
                    referenced_columns(query),
                )
        self._primed = primed
        return len(primed)

    # ------------------------------------------------------------------
    # Signature plumbing
    # ------------------------------------------------------------------
    def config_signature(self, query: Query) -> FrozenSet[IndexKey]:
        """The relevant-config signature for a query (see whatif.py)."""
        return self._whatif.relevant_signature(query)

    def stats_token(self, table: str) -> StatsToken:
        """The backend's current statistics token for a table.

        Delegates to the what-if backend when it carries one (remote
        backends own their statistics); otherwise combines the
        catalog's row count with its monotone ``stats_version``, which
        every stats-affecting mutation bumps (``set_stats``,
        ``apply_row_delta``, ``set_row_count``) -- so a delete-then-
        insert restoring the old row count still changes the token.
        """
        backend = getattr(self._whatif, "backend", None)
        if backend is not None:
            return backend.stats_token(table)
        tdef = self._catalog.table(table)
        return tdef.row_count, self._catalog.stats_version(table)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_indexes(
        self, indexes: Iterable[IndexDef], reason: str = "materialization"
    ) -> int:
        """Drop entries a materialization change could have affected.

        An entry's gain can only change when the availability of an
        index on one of its query's referenced columns changes -- the
        §4.1 consistency rule, the same one ``Profiler.purge_stale``
        applies to pair statistics.

        Returns:
            The number of entries dropped.
        """
        changed = {(ix.table, ix.column) for ix in indexes}
        if not changed:
            return 0
        stale = [
            key
            for key, entry in self._entries.items()
            if changed & entry.referenced
        ]
        return self._drop(stale, reason)

    def invalidate_table(self, table: str, reason: str = "stats") -> int:
        """Drop entries whose query touches a table (stats refresh)."""
        stale = [
            key
            for key, entry in self._entries.items()
            if any(t == table for t, _tok in entry.tokens)
        ]
        return self._drop(stale, reason)

    def clear(self, reason: str = "manual") -> int:
        """Drop every entry (fleet rebalance, snapshot restore)."""
        return self._drop(list(self._entries), reason)

    def roll_epoch(self) -> int:
        """Advance the epoch clock and age out unused entries.

        Called at every epoch boundary (the Profiler's epoch roll-over);
        entries that have not produced a hit for ``ttl_epochs`` epochs
        are dropped so reorganization-era gains cannot linger forever.
        """
        self._epoch += 1
        horizon = self._epoch - self.ttl_epochs
        stale = [
            key
            for key, entry in self._entries.items()
            if entry.last_used_epoch < horizon
        ]
        return self._drop(stale, "epoch")

    # ------------------------------------------------------------------
    def _drop(self, keys: List[Tuple], reason: str) -> int:
        for key in keys:
            del self._entries[key]
        if keys:
            self.invalidations += len(keys)
            self._m_invalidations.inc(len(keys), reason=reason)
            self._sync_gauge()
        return len(keys)

    def _evict_oldest(self) -> None:
        oldest = min(
            self._entries, key=lambda k: self._entries[k].last_used_epoch
        )
        del self._entries[oldest]
        self.invalidations += 1
        self._m_invalidations.inc(1, reason="capacity")

    def _sync_gauge(self) -> None:
        self._m_entries.set(len(self._entries))
