"""The Self-Organizer: reorganization and re-budgeting (§5).

At the end of each epoch the Self-Organizer:

1. folds the Profiler's epoch benefits into per-index benefit histories;
2. computes ``NetBenefit`` forecasts and solves a KNAPSACK over
   ``H ∪ M`` to pick the next materialized set;
3. promotes the most promising candidates (top cluster of a 2-means
   split over smoothed crude benefits) into the next hot set;
4. re-budgets: re-solves the knapsack under an *optimistic* view of the
   hot indexes (upper confidence bounds, crude estimates where never
   measured) and maps the improvement ratio
   ``r = NetBenefit(M') / NetBenefit(M)`` onto the next epoch's what-if
   budget -- 0 at ``r = 1``, the maximum at ``r >= knee`` (paper: 1.3).
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.config import ColtConfig
from repro.core.forecast import BenefitHistory, net_benefit
from repro.core.knapsack import (
    KnapsackItem,
    SelectionConstraints,
    solve_constrained,
    solve_knapsack,
)
from repro.core.profiler import EpochIndexBenefit, Profiler
from repro.core.window_tuner import ForecastWindowTuner
from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.obs.names import TUNER_METRICS
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

# Composite-safe index identity: table plus ordered key columns.
IndexKey = Tuple[str, Tuple[str, ...]]


def _key(index: IndexDef) -> IndexKey:
    return index.table, index.columns


@dataclasses.dataclass
class ReorganizationResult:
    """Decisions taken at one epoch boundary.

    Attributes:
        materialize: Indexes to add to the materialized set.
        drop: Indexes to remove from the materialized set.
        hot: The next epoch's hot set.
        whatif_budget: The next epoch's what-if budget ``#WI_lim``.
        improvement_ratio: The re-budgeting ratio ``r``.
        build_failures: Requested materializations whose build failed
            this boundary; they stay out of ``M`` (the knapsack treats
            them as unmaterialized) and retry with backoff.
        recovered_builds: Previously failed builds whose backed-off
            retry succeeded at this boundary (re-admitted to ``M``).
        abandoned_builds: Failed builds whose retry policy was exhausted
            at this boundary.
        breaker_state: The profiling circuit breaker's state after this
            boundary (``"closed"``, ``"open"`` or ``"half_open"``).
        quarantined: Indexes the guardrails quarantined at this boundary
            (filled by the tuner when a guardrail manager is attached);
            they also appear in ``drop``.
        released: Indexes the guardrails released from quarantine at
            this boundary.
    """

    materialize: List[IndexDef]
    drop: List[IndexDef]
    hot: List[IndexDef]
    whatif_budget: int
    improvement_ratio: float
    build_failures: List[IndexDef] = dataclasses.field(default_factory=list)
    recovered_builds: List[IndexDef] = dataclasses.field(default_factory=list)
    abandoned_builds: List[IndexDef] = dataclasses.field(default_factory=list)
    breaker_state: str = "closed"
    quarantined: List[IndexDef] = dataclasses.field(default_factory=list)
    released: List[IndexDef] = dataclasses.field(default_factory=list)


class SelfOrganizer:
    """Implements reorganization and re-budgeting."""

    def __init__(
        self,
        catalog: Catalog,
        config: ColtConfig,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._catalog = catalog
        self._config = config
        self.registry = registry or NULL_REGISTRY
        self._m_knapsack = TUNER_METRICS["colt_knapsack_seconds"].build(self.registry)
        self.materialized: Set[IndexDef] = set()
        self.hot: Set[IndexDef] = set()
        self._history: Dict[IndexKey, BenefitHistory] = {}
        self._high_history: Dict[IndexKey, BenefitHistory] = {}
        self._measured: Dict[IndexKey, int] = {}
        # Write-aware extension: per-table insert counts per epoch.
        self._writes: Dict[str, Deque[int]] = {}
        # Previous epoch's knapsack selections (by index key), used to
        # warm-start the next solve's branch-and-bound incumbent.
        self._warm_conservative: frozenset = frozenset()
        self._warm_optimistic: frozenset = frozenset()
        self._window_tuner = (
            ForecastWindowTuner(config.effective_forecast_window)
            if config.adaptive_forecast_window
            else None
        )

    # ------------------------------------------------------------------
    def end_epoch(
        self,
        report: Dict[IndexKey, EpochIndexBenefit],
        profiler: Profiler,
        inserts: Optional[Dict[str, int]] = None,
        constraints: Optional[SelectionConstraints] = None,
    ) -> ReorganizationResult:
        """Run one reorganization + re-budgeting step.

        Args:
            report: The Profiler's epoch benefit summary for ``H ∪ M``.
            profiler: The profiler (for candidate rankings; its epoch
                state must already be rolled).
            inserts: Per-table insert counts observed this epoch (the
                write-aware extension); indexes on write-hot tables get
                their forecasted maintenance cost charged against
                NetBenefit.
            constraints: Optional guardrail/DBA constraints on both
                knapsack solves: pinned indexes are forced into ``M``,
                banned ones (advice bans, quarantine, rollout staging)
                are excluded from selection and from hot promotion,
                preferred ones get their NetBenefit scaled.

        Returns:
            The decisions for the next epoch.  The caller (the tuner)
            is responsible for carrying them out via the Scheduler and
            for invalidating profiler statistics on changed tables.
        """
        self._record_histories(report)
        self._record_writes(inserts or {})

        # --- Reorganization: the new materialized set -----------------
        # Hot indexes become eligible for materialization only once they
        # carry enough measured history to trust the forecast.
        min_epochs = self._config.min_history_epochs
        # Canonical (name-sorted) pool order: ``hot`` and ``materialized``
        # are sets, and letting their hash order leak into the knapsack
        # would break run-to-run reproducibility on value ties.
        eligible = [
            ix
            for ix in sorted(self.hot, key=str)
            if len(self._history.get(_key(ix), ())) >= min_epochs
        ]
        pool = eligible + [
            ix for ix in sorted(self.materialized, key=str) if ix not in eligible
        ]
        if constraints is not None and constraints.pinned:
            # Pinned indexes always face the knapsack, history or not;
            # solve_constrained forces them in regardless of value.
            in_pool = {_key(ix) for ix in pool}
            pool += [
                ix
                for ix in sorted(constraints.pinned, key=str)
                if _key(ix) not in in_pool
            ]
        values = {
            _key(ix): self._net_benefit(ix, optimistic=False) for ix in pool
        }
        selected, chosen_value = self._solve(
            pool, values, warm=self._warm_conservative, constraints=constraints
        )
        self._warm_conservative = frozenset(_key(ix) for ix in selected)
        new_m = set(selected)
        adds = [ix for ix in sorted(new_m, key=str) if ix not in self.materialized]
        drops = [ix for ix in sorted(self.materialized, key=str) if ix not in new_m]

        # --- Hot set selection ----------------------------------------
        hot_exclude = set(new_m)
        if constraints is not None:
            # A banned index must not be promoted hot either: profiling
            # it would spend what-if budget on an unselectable index.
            hot_exclude |= set(constraints.banned)
        new_hot = self._select_hot(profiler, exclude=hot_exclude)

        # --- Re-budgeting ---------------------------------------------
        optimistic_values = dict(values)
        for ix in self.hot:
            optimistic_values[_key(ix)] = self._net_benefit(ix, optimistic=True)
        for ix in new_hot:
            optimistic_values.setdefault(
                _key(ix), self._net_benefit(ix, optimistic=True)
            )
        # The optimistic scenario considers every hot index -- including
        # ones not yet eligible for actual materialization -- since its
        # purpose is to decide whether profiling them is worthwhile.
        opt_pool = sorted({*pool, *self.hot, *new_hot}, key=str)
        _opt_selected, opt_value = self._solve(
            opt_pool,
            optimistic_values,
            warm=self._warm_optimistic,
            constraints=constraints,
        )
        self._warm_optimistic = frozenset(_key(ix) for ix in _opt_selected)
        ratio = self._improvement_ratio(opt_value, chosen_value)
        budget = self._budget_for(ratio)

        # Promising-but-unproven hot indexes are the reason profiling
        # exists: while any hot index with positive optimistic potential
        # still lacks the history needed for materialization eligibility,
        # keep the profiler funded so it can prove (or refute) them.
        unproven = [
            ix
            for ix in new_hot
            if self._measured.get(_key(ix), 0) < min_epochs
            and optimistic_values.get(_key(ix), 0.0) > 0.0
        ]
        if unproven:
            budget = max(budget, self._config.max_whatif_per_epoch // 2)

        # --- Adaptive forecast window (§6.2 future work) ----------------
        if self._window_tuner is not None:
            self._window_tuner.observe_epoch(adds, drops)

        # --- Commit set transitions -----------------------------------
        for ix in drops:
            self._history.pop(_key(ix), None)
            self._high_history.pop(_key(ix), None)
        self.materialized = new_m
        self.hot = set(new_hot)

        return ReorganizationResult(
            materialize=adds,
            drop=drops,
            hot=sorted(self.hot, key=str),
            whatif_budget=budget,
            improvement_ratio=ratio,
        )

    # ------------------------------------------------------------------
    def _record_histories(self, report: Dict[IndexKey, EpochIndexBenefit]) -> None:
        """Fold raw epoch benefits into the histories.

        Benefits are recorded unsmoothed: the forecasting function's
        windowed means (with a minimum window, see ``repro.core.
        forecast``) absorb per-epoch Poisson arrival noise, while the
        raw window retains pre-shift memory -- the property behind the
        paper's noise resilience (a dropped distribution's indexes keep
        part of their forecast for up to ``h`` epochs).
        """
        h = self._config.history_epochs
        for key, benefit in report.items():
            self._history.setdefault(key, BenefitHistory(h)).record(benefit.low)
            self._high_history.setdefault(key, BenefitHistory(h)).record(
                benefit.high
            )
            self._measured[key] = self._measured.get(key, 0) + benefit.measured

    def _net_benefit(self, index: IndexDef, optimistic: bool) -> float:
        """Forecasted NetBenefit for an index.

        ``NetBenefit(I) = Σ_j PredBenefit_j(I) − MatCost(I)`` with
        ``MatCost = 0`` for already-materialized indexes (§5).  We take
        the formula literally: per-query benefit forecasts summed over
        the horizon against the full build cost.  This makes the build
        cost a strong hysteresis against swapping near-equal indexes in
        and out of ``M`` every epoch -- the self-correcting behaviour
        the paper describes.  ``matcost_weight`` rescales the damping
        for the ablation benches.

        Write-aware extension: indexes on tables receiving inserts are
        additionally charged their forecasted maintenance cost over the
        horizon, at the same benefit/cost exchange rate as the build
        cost.  A heavily written table must earn its indexes twice over.
        """
        key = _key(index)
        if self._window_tuner is not None:
            horizon = self._window_tuner.window
        else:
            horizon = self._config.effective_forecast_window
        histories = self._high_history if optimistic else self._history
        history = histories.get(key)
        values = history.values() if history is not None else []
        build = self._catalog.index_build_cost(index)
        if index in self.materialized:
            # Small retention credit: a challenger must beat the
            # incumbent by a margin, since evicting and re-adopting on
            # forecast noise costs two builds.
            mat_cost = -build * self._config.retention_weight
        else:
            mat_cost = build * self._config.matcost_weight
        maintenance = (
            self.write_rate(index.table)
            * self._catalog.params.index_maintain_cost_per_tuple
            * horizon
            * self._config.matcost_weight
        )
        return net_benefit(values, horizon, mat_cost + maintenance)

    # ------------------------------------------------------------------
    # Write-aware extension helpers
    # ------------------------------------------------------------------
    def _record_writes(self, inserts: Dict[str, int]) -> None:
        h = self._config.history_epochs
        for table in inserts:
            self._writes.setdefault(table, deque(maxlen=h))
        for table, window in self._writes.items():
            window.append(inserts.get(table, 0))

    def write_rate(self, table: str) -> float:
        """Mean inserts per epoch observed for a table (memory window)."""
        window = self._writes.get(table)
        if not window:
            return 0.0
        return sum(window) / len(window)

    def _solve(
        self,
        pool: Iterable[IndexDef],
        values: Dict[IndexKey, float],
        warm: frozenset = frozenset(),
        constraints: Optional[SelectionConstraints] = None,
    ) -> Tuple[List[IndexDef], float]:
        capacity = self._config.storage_budget_pages
        items = [
            KnapsackItem(
                key=ix,
                size=self._catalog.index_size_pages(ix),
                value=values.get(_key(ix), 0.0),
            )
            for ix in pool
        ]
        if constraints:
            # The previous selection may violate fresh constraints, so
            # the warm incumbent is not a valid lower bound here.
            started = time.perf_counter()
            selected, total = solve_constrained(items, capacity, constraints)
            self._m_knapsack.observe(time.perf_counter() - started)
            return [item.key for item in selected], total
        # Warm-start: the previous epoch's selection, re-valued under
        # this epoch's forecasts and filtered to still-viable items, is
        # a feasible solution -- a true lower bound that lets the
        # branch-and-bound prune earlier without changing its optimum.
        incumbent = 0.0
        if warm and self._config.knapsack_warm_start:
            prev = [
                it
                for it in items
                if _key(it.key) in warm
                and it.value > 0.0
                and 0.0 < it.size <= capacity
            ]
            if prev and sum(it.size for it in prev) <= capacity:
                incumbent = sum(it.value for it in prev)
        started = time.perf_counter()
        selected, total = solve_knapsack(
            items, capacity, incumbent_value=incumbent
        )
        self._m_knapsack.observe(time.perf_counter() - started)
        return [item.key for item in selected], total

    def _select_hot(
        self, profiler: Profiler, exclude: Set[IndexDef]
    ) -> List[IndexDef]:
        """Select the hot set from the candidates' crude benefits (§5).

        The paper groups smoothed ``BenefitC`` values into two clusters
        with minimal variance and promotes the top cluster.  We apply the
        same 2-means split twice -- once on absolute benefit and once on
        benefit *density* (benefit per page) -- and take the union: under
        a tight budget the knapsack favours dense small indexes that a
        purely absolute ranking would starve of profiling.
        """
        ranked = profiler.candidates.ranked(exclude=exclude)
        positive = [s for s in ranked if s.smoothed_benefit > 0.0]
        if not positive:
            return []

        by_benefit = positive
        split_b = two_means_split([s.smoothed_benefit for s in by_benefit])

        def density(stats) -> float:
            size = max(1.0, self._catalog.index_size_pages(stats.index))
            return stats.smoothed_benefit / size

        by_density = sorted(positive, key=density, reverse=True)
        split_d = two_means_split([density(s) for s in by_density])

        promoted = []
        seen: Set[IndexKey] = set()
        for stats in by_benefit[:split_b] + by_density[:split_d]:
            key = _key(stats.index)
            if key not in seen:
                seen.add(key)
                promoted.append(stats)
        promoted.sort(key=lambda s: s.smoothed_benefit, reverse=True)
        promoted = promoted[: self._config.max_hot_size]

        # Seed optimistic histories for newly promoted candidates so
        # re-budgeting can see their potential before any what-if call.
        for stats in promoted:
            key = _key(stats.index)
            if key not in self._high_history:
                history = BenefitHistory(self._config.history_epochs)
                history.record(stats.smoothed_benefit)
                self._high_history[key] = history
        return [s.index for s in promoted]

    def _improvement_ratio(self, optimistic: float, current: float) -> float:
        if optimistic <= 0.0:
            return 1.0
        if current <= 0.0:
            # Nothing materialized (or nothing worth keeping) while the
            # hot set shows potential: maximal urgency.
            return self._config.rebudget_knee
        return max(1.0, optimistic / current)

    def _budget_for(self, ratio: float) -> int:
        """Linear map from the ratio to ``#WI_lim`` (0 at 1, max at knee)."""
        knee = self._config.rebudget_knee
        frac = (ratio - 1.0) / (knee - 1.0)
        frac = min(1.0, max(0.0, frac))
        return int(round(frac * self._config.max_whatif_per_epoch))


def two_means_split(values: List[float]) -> int:
    """Split a descending value list into two groups with minimal variance.

    Returns:
        The size of the top group (at least 1).  This is exact 2-means
        in one dimension: every contiguous split of the sorted list is
        scored by within-group sum of squared deviations.
    """
    if not values:
        return 0
    if len(values) == 1:
        return 1
    best_split = 1
    best_score = float("inf")
    for split in range(1, len(values)):
        top, bottom = values[:split], values[split:]
        score = _sse(top) + _sse(bottom)
        if score < best_score:
            best_score = score
            best_split = split
    return best_split


def _sse(group: List[float]) -> float:
    mean = sum(group) / len(group)
    return sum((v - mean) ** 2 for v in group)

