"""The Scheduler: carrying out materialization requests (§3).

The paper lists three strategies and implements the first; we implement
the first two:

1. **Immediate** -- build requested indexes right away, asynchronously in
   the prototype; in the simulation the build cost is charged to the
   ledger at request time and the index becomes available for the next
   query.
2. **Idle-time** (extension) -- queue requests and build them only when
   the caller signals idle time, trading index availability for zero
   interference with foreground queries.

When a :class:`~repro.engine.storage.PhysicalStore` is attached the
scheduler also builds the physical B+tree so that subsequent executions
can actually use the index; otherwise only the catalog state changes
(pure cost-model simulation).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable, List, Optional

from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.engine.storage import PhysicalStore


class SchedulingPolicy(enum.Enum):
    """When requested index builds are executed."""

    IMMEDIATE = "immediate"
    IDLE = "idle"


@dataclasses.dataclass
class ScheduledBuild:
    """A completed index build, with its charged cost."""

    index: IndexDef
    cost: float


class Scheduler:
    """Executes materialization and drop requests against the catalog.

    Attributes:
        total_build_cost: Cumulative cost charged for index builds.
        builds: Log of completed builds.
    """

    def __init__(
        self,
        catalog: Catalog,
        store: Optional[PhysicalStore] = None,
        policy: SchedulingPolicy = SchedulingPolicy.IMMEDIATE,
    ) -> None:
        self._catalog = catalog
        self._store = store
        self._policy = policy
        self._pending: List[IndexDef] = []
        self.total_build_cost = 0.0
        self.builds: List[ScheduledBuild] = []

    @property
    def pending(self) -> List[IndexDef]:
        """Builds queued under the idle-time policy."""
        return list(self._pending)

    def request_materialization(self, indexes: Iterable[IndexDef]) -> float:
        """Request index builds; returns the cost charged *now*.

        Under the immediate policy every build happens (and is charged)
        at once; under the idle policy requests are queued and cost 0
        until :meth:`on_idle`.
        """
        charged = 0.0
        for index in indexes:
            if self._catalog.is_materialized(index):
                continue
            if self._policy is SchedulingPolicy.IMMEDIATE:
                charged += self._build(index)
            else:
                if index not in self._pending:
                    self._pending.append(index)
        return charged

    def request_drop(self, indexes: Iterable[IndexDef]) -> None:
        """Drop indexes immediately (dropping is cheap in any policy)."""
        for index in indexes:
            self._pending = [p for p in self._pending if p != index]
            if self._store is not None:
                self._store.drop_index(index)
            else:
                self._catalog.drop_index(index)

    def on_idle(self, max_builds: Optional[int] = None) -> float:
        """Build queued indexes during idle time (idle policy only).

        Args:
            max_builds: Cap on how many queued builds to run; None runs
                them all.

        Returns:
            The cost charged for the builds performed.
        """
        charged = 0.0
        budget = len(self._pending) if max_builds is None else max_builds
        while self._pending and budget > 0:
            index = self._pending.pop(0)
            charged += self._build(index)
            budget -= 1
        return charged

    def _build(self, index: IndexDef) -> float:
        cost = self._catalog.index_build_cost(index)
        if self._store is not None:
            self._store.build_index(index)
        else:
            self._catalog.materialize_index(index)
        self.total_build_cost += cost
        self.builds.append(ScheduledBuild(index=index, cost=cost))
        return cost
