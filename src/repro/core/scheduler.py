"""The Scheduler: carrying out materialization requests (§3).

The paper lists three strategies and implements the first; we implement
the first two:

1. **Immediate** -- build requested indexes right away, asynchronously in
   the prototype; in the simulation the build cost is charged to the
   ledger at request time and the index becomes available for the next
   query.
2. **Idle-time** (extension) -- queue requests and build them only when
   the caller signals idle time, trading index availability for zero
   interference with foreground queries.

When a :class:`~repro.engine.storage.PhysicalStore` is attached the
scheduler also builds the physical B+tree so that subsequent executions
can actually use the index; otherwise only the catalog state changes
(pure cost-model simulation).

Build failures (:class:`IndexBuildError`, whether real or injected via
the scheduler's ``failpoint``) do not propagate: the failed index stays
unmaterialized -- the knapsack keeps treating it as absent -- and is
re-queued with capped exponential backoff across epoch boundaries (see
:meth:`Scheduler.advance_epoch`).  After the retry policy is exhausted
the index is abandoned until the Self-Organizer requests it again.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Iterable, List, Optional

from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.engine.storage import PhysicalStore
from repro.obs.names import SCHEDULER_METRICS
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.resilience.errors import IndexBuildError
from repro.resilience.retry import RetryPolicy

__all__ = [
    "FailedBuild",
    "IndexBuildError",
    "RetryReport",
    "ScheduledBuild",
    "Scheduler",
    "SchedulingPolicy",
]


class SchedulingPolicy(enum.Enum):
    """When requested index builds are executed."""

    IMMEDIATE = "immediate"
    IDLE = "idle"


@dataclasses.dataclass
class ScheduledBuild:
    """A completed index build, with its charged cost."""

    index: IndexDef
    cost: float


@dataclasses.dataclass
class FailedBuild:
    """A build that failed and is waiting (or gave up) on retries.

    Attributes:
        index: The index that failed to build.
        attempts: Build attempts so far (including the first).
        next_retry_epoch: Scheduler epoch at which the next retry runs.
        error: Text of the most recent failure.
    """

    index: IndexDef
    attempts: int
    next_retry_epoch: int
    error: str


@dataclasses.dataclass
class RetryReport:
    """What one epoch boundary's retry pass did.

    Attributes:
        charged: Build cost charged for successful retries.
        recovered: Indexes whose retry succeeded this epoch.
        abandoned: Indexes whose retry policy was exhausted this epoch.
    """

    charged: float = 0.0
    recovered: List[IndexDef] = dataclasses.field(default_factory=list)
    abandoned: List[IndexDef] = dataclasses.field(default_factory=list)


class Scheduler:
    """Executes materialization and drop requests against the catalog.

    Args:
        catalog: The catalog to operate on.
        store: Optional physical store for real B+tree builds.
        policy: When requested builds run.
        retry: Backoff policy for failed builds.
        failpoint: Optional hook invoked before each build attempt with
            the index; a fault injector installs one that raises
            :class:`IndexBuildError` per its plan.

    Attributes:
        total_build_cost: Cumulative cost charged for index builds.
        builds: Log of completed builds.
        retry_queue: Failed builds awaiting a backed-off retry.
        abandoned: Failed builds whose retry policy was exhausted.
        failure_count: Total build failures observed (first tries and
            retries).
    """

    def __init__(
        self,
        catalog: Catalog,
        store: Optional[PhysicalStore] = None,
        policy: SchedulingPolicy = SchedulingPolicy.IMMEDIATE,
        retry: Optional[RetryPolicy] = None,
        failpoint: Optional[Callable[[IndexDef], None]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._catalog = catalog
        self._store = store
        self._policy = policy
        self._retry = retry or RetryPolicy()
        self.failpoint = failpoint
        #: Invoked with the indexes whose materialization state changed
        #: (built or dropped) whenever this scheduler changes it,
        #: including idle-time and retried builds.  The tuner hangs
        #: gain-cache invalidation here; observation only -- the hook
        #: must not mutate tuning state.
        self.on_change: Optional[Callable[[List[IndexDef]], None]] = None
        self._pending: List[IndexDef] = []
        self._epoch = 0
        self.total_build_cost = 0.0
        self.builds: List[ScheduledBuild] = []
        self.retry_queue: List[FailedBuild] = []
        self.abandoned: List[FailedBuild] = []
        self.failure_count = 0
        self.registry = registry or NULL_REGISTRY
        self._m_builds = SCHEDULER_METRICS["scheduler_builds_total"].build(self.registry)
        self._m_build_failures = SCHEDULER_METRICS["scheduler_build_failures_total"].build(
            self.registry
        )
        self._m_build_cost = SCHEDULER_METRICS["scheduler_build_cost_total"].build(self.registry)
        self._m_retries = SCHEDULER_METRICS["scheduler_retry_attempts_total"].build(self.registry)
        self._m_recovered = SCHEDULER_METRICS["scheduler_recovered_builds_total"].build(
            self.registry
        )
        self._m_abandoned = SCHEDULER_METRICS["scheduler_abandoned_builds_total"].build(
            self.registry
        )
        self._m_retry_depth = SCHEDULER_METRICS["scheduler_retry_queue_depth"].build(self.registry)
        self._m_pending = SCHEDULER_METRICS["scheduler_pending_builds"].build(self.registry)

    @property
    def pending(self) -> List[IndexDef]:
        """Builds queued under the idle-time policy."""
        return list(self._pending)

    @property
    def epoch(self) -> int:
        """Epoch boundaries seen so far (the retry clock)."""
        return self._epoch

    def request_materialization(self, indexes: Iterable[IndexDef]) -> float:
        """Request index builds; returns the cost charged *now*.

        Under the immediate policy every build happens (and is charged)
        at once; under the idle policy requests are queued and cost 0
        until :meth:`on_idle`.  A build that fails charges nothing and
        joins :attr:`retry_queue`; the caller can tell from the catalog
        (the index stays unmaterialized).
        """
        charged = 0.0
        built: List[IndexDef] = []
        for index in indexes:
            if self._catalog.is_materialized(index):
                continue
            if self._policy is SchedulingPolicy.IMMEDIATE:
                try:
                    charged += self._build(index)
                except IndexBuildError as exc:
                    self._record_failure(index, exc)
                else:
                    built.append(index)
            else:
                if index not in self._pending:
                    self._pending.append(index)
        self._sync_gauges()
        self._notify_change(built)
        return charged

    def request_drop(self, indexes: Iterable[IndexDef]) -> None:
        """Drop indexes immediately (dropping is cheap in any policy).

        Dropping also cancels any queued or backed-off retry for the
        index -- the Self-Organizer no longer wants it.
        """
        dropped: List[IndexDef] = []
        for index in indexes:
            self._pending = [p for p in self._pending if p != index]
            self.retry_queue = [f for f in self.retry_queue if f.index != index]
            if self._store is not None:
                self._store.drop_index(index)
            else:
                self._catalog.drop_index(index)
            dropped.append(index)
        self._sync_gauges()
        self._notify_change(dropped)

    def on_idle(self, max_builds: Optional[int] = None) -> float:
        """Build queued indexes during idle time (idle policy only).

        Args:
            max_builds: Cap on how many queued builds to run; None runs
                them all.

        Returns:
            The cost charged for the builds performed.
        """
        charged = 0.0
        built: List[IndexDef] = []
        budget = len(self._pending) if max_builds is None else max_builds
        while self._pending and budget > 0:
            index = self._pending.pop(0)
            try:
                charged += self._build(index)
            except IndexBuildError as exc:
                self._record_failure(index, exc)
            else:
                built.append(index)
            budget -= 1
        self._sync_gauges()
        self._notify_change(built)
        return charged

    def advance_epoch(self) -> RetryReport:
        """Close an epoch: advance the retry clock and run due retries.

        Called by the tuner at every epoch boundary, before new
        materialization requests are applied.  Each due entry gets one
        build attempt; on failure its backoff doubles (capped) until the
        policy's ``max_attempts``, after which it moves to
        :attr:`abandoned`.

        Returns:
            The cost charged and the indexes recovered or abandoned.
        """
        self._epoch += 1
        report = RetryReport()
        due = [f for f in self.retry_queue if f.next_retry_epoch <= self._epoch]
        for entry in due:
            self.retry_queue.remove(entry)
            if self._catalog.is_materialized(entry.index):
                continue
            self._m_retries.inc()
            try:
                report.charged += self._build(entry.index)
            except IndexBuildError as exc:
                self.failure_count += 1
                self._m_build_failures.inc()
                entry.attempts += 1
                entry.error = str(exc)
                if self._retry.exhausted(entry.attempts):
                    self.abandoned.append(entry)
                    report.abandoned.append(entry.index)
                    self._m_abandoned.inc()
                else:
                    entry.next_retry_epoch = self._epoch + self._retry.delay_for(
                        entry.attempts
                    )
                    self.retry_queue.append(entry)
            else:
                report.recovered.append(entry.index)
                self._m_recovered.inc()
        self._sync_gauges()
        self._notify_change(report.recovered)
        return report

    # ------------------------------------------------------------------
    def _notify_change(self, changed: List[IndexDef]) -> None:
        if changed and self.on_change is not None:
            self.on_change(changed)

    def _sync_gauges(self) -> None:
        self._m_retry_depth.set(len(self.retry_queue))
        self._m_pending.set(len(self._pending))

    def _record_failure(self, index: IndexDef, exc: IndexBuildError) -> None:
        self.failure_count += 1
        self._m_build_failures.inc()
        if any(f.index == index for f in self.retry_queue):
            return
        self.retry_queue.append(
            FailedBuild(
                index=index,
                attempts=1,
                next_retry_epoch=self._epoch + self._retry.delay_for(1),
                error=str(exc),
            )
        )

    def _build(self, index: IndexDef) -> float:
        if self.failpoint is not None:
            self.failpoint(index)
        cost = self._catalog.index_build_cost(index)
        try:
            if self._store is not None:
                self._store.build_index(index)
            else:
                self._catalog.materialize_index(index)
        except IndexBuildError:
            raise
        except Exception as exc:
            # Roll back any partial physical state so the index is
            # cleanly absent, then normalize to the scheduler's error.
            try:
                if self._store is not None:
                    self._store.drop_index(index)
                elif self._catalog.is_materialized(index):
                    self._catalog.drop_index(index)
            except Exception:
                pass
            raise IndexBuildError(f"build of {index} failed: {exc}") from exc
        self.total_build_cost += cost
        self.builds.append(ScheduledBuild(index=index, cost=cost))
        self._m_builds.inc()
        self._m_build_cost.inc(cost)
        return cost
