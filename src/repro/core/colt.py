"""The COLT tuner facade.

Wires the Profiler, Self-Organizer and Scheduler to the engine behind a
single per-query entry point, :meth:`ColtTuner.process_query`.  The
returned :class:`QueryOutcome` is the simulation's ledger record: the
query's execution cost under the configuration in force, plus the
on-line tuning overheads attributable to it (what-if calls this query,
index builds triggered at an epoch boundary it closed).
"""

from __future__ import annotations

import dataclasses
import time
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.config import ColtConfig
from repro.core.profiler import Profiler
from repro.core.scheduler import Scheduler, SchedulingPolicy
from repro.core.self_organizer import ReorganizationResult, SelfOrganizer
from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.engine.storage import PhysicalStore
from repro.guardrails.synthesis import synthesize_constraints
from repro.obs.dashboard import OverheadDashboard
from repro.obs.export import build_snapshot
from repro.obs.names import TUNER_METRICS
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.backend.base import Backend
from repro.backend.local import LocalBackend
from repro.optimizer.plan import PlanNode
from repro.optimizer.whatif import WhatIfOptimizer
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.sql.ast import Query

if TYPE_CHECKING:  # avoid repro.core <-> repro.guardrails import cycle
    from repro.guardrails.manager import GuardrailManager


@dataclasses.dataclass
class InsertOutcome:
    """Ledger record for a batch of inserts (write-aware extension).

    Attributes:
        table: Target table.
        count: Rows inserted.
        heap_cost: Cost of appending to the heap.
        maintenance_cost: Cost of keeping the table's materialized
            indexes up to date for these rows.
        total_cost: Sum of the above.
    """

    table: str
    count: int
    heap_cost: float
    maintenance_cost: float
    total_cost: float


@dataclasses.dataclass
class QueryOutcome:
    """Ledger record for one processed query.

    Attributes:
        index: 0-based position of the query in the stream.
        execution_cost: Optimizer cost of the chosen plan under the
            configuration in force when the query ran.
        whatif_calls: What-if calls spent profiling this query.
        whatif_overhead: Cost units charged for those calls.
        verify_calls: Guardrail verification probes spent on this query
            (0 with no guardrail manager attached).
        verify_overhead: Cost units charged for those probes (optimizer
            calls plus any shadow-execution charge).
        build_cost: Index build cost charged at the epoch boundary this
            query closed (0 otherwise).
        total_cost: Sum of the above -- the COLT-side response-time
            analogue the paper measures.
        plan: The executed plan (None for a failed query recorded in
            ``on_error="skip"`` mode).
        epoch_ended: Whether this query closed an epoch.
        reorganization: The Self-Organizer's decisions, when an epoch
            ended.
        error: The exception that aborted this query, when it was
            recorded by :meth:`ColtTuner.run` in ``"skip"`` mode; None
            for queries that processed normally.
    """

    index: int
    execution_cost: float
    whatif_calls: int
    whatif_overhead: float
    build_cost: float
    total_cost: float
    plan: Optional[PlanNode]
    verify_calls: int = 0
    verify_overhead: float = 0.0
    epoch_ended: bool = False
    reorganization: Optional[ReorganizationResult] = None
    error: Optional[BaseException] = None

    @property
    def failed(self) -> bool:
        """Whether this record stands in for a query that errored."""
        return self.error is not None


class ColtTuner:
    """Continuous on-line index tuning over a catalog.

    Args:
        catalog: The catalog to tune.  Its materialized set is owned by
            the tuner from now on.
        config: Tuning parameters (defaults follow the paper).
        backend: DBMS backend answering what-if probes; defaults to a
            :class:`~repro.backend.local.LocalBackend` over ``catalog``
            (the in-python engine).  Must describe the same catalog.
        store: Optional physical store; when given, materializations
            build real B+trees so queries can be executed.
        policy: Materialization scheduling policy.
        breaker: Circuit breaker guarding what-if profiling; defaults
            to a fresh one with standard thresholds.
        retry: Backoff policy for failed index builds.
        fault_injector: Optional fault injector; when given, its
            failpoints are installed on the what-if optimizer and the
            scheduler (testing and chaos runs).
        registry: Metrics registry shared by the tuner and its
            components; defaults to a fresh enabled one.  Pass
            ``MetricsRegistry(enabled=False)`` for a zero-overhead
            no-op registry.
        guardrails: Optional :class:`~repro.guardrails.manager.
            GuardrailManager` closing the predict->observe->act loop:
            per-query observed-cost verification, quarantine of
            over-promised indexes, and DBA pin/ban/prefer constraints
            on reorganization.  None (the default) changes nothing.

    Attributes:
        tracer: Span tracer timing queries and epoch closes.
        dashboard: Per-epoch what-if overhead accounting.
    """

    def __init__(
        self,
        catalog: Catalog,
        config: Optional[ColtConfig] = None,
        store: Optional[PhysicalStore] = None,
        policy: SchedulingPolicy = SchedulingPolicy.IMMEDIATE,
        breaker: Optional[CircuitBreaker] = None,
        retry: Optional[RetryPolicy] = None,
        fault_injector: Optional[FaultInjector] = None,
        registry: Optional[MetricsRegistry] = None,
        guardrails: Optional["GuardrailManager"] = None,
        backend: Optional[Backend] = None,
    ) -> None:
        self.catalog = catalog
        self.config = config or ColtConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = SpanTracer(enabled=self.registry.enabled)
        self.dashboard = OverheadDashboard()
        self.backend = backend if backend is not None else LocalBackend(catalog)
        if self.backend.catalog is not catalog:
            raise ValueError("backend and tuner must share one catalog")
        self.backend.bind_registry(self.registry)
        self.optimizer = getattr(self.backend, "optimizer", None)
        self.whatif = WhatIfOptimizer(backend=self.backend)
        self.profiler = Profiler(
            catalog, self.whatif, self.config, breaker=breaker, registry=self.registry
        )
        self.self_organizer = SelfOrganizer(catalog, self.config, registry=self.registry)
        self.scheduler = Scheduler(
            catalog, store=store, policy=policy, retry=retry, registry=self.registry
        )
        # Any materialization change (builds, drops, idle-time builds,
        # recovered retries) invalidates affected gain-cache entries;
        # pair-statistics consistency stays with purge_stale in _apply.
        self.scheduler.on_change = lambda changed: (
            self.profiler.gain_cache.invalidate_indexes(
                changed, reason="materialization"
            )
        )
        if fault_injector is not None:
            fault_injector.attach(self)
        self._store = store
        self._queries_seen = 0
        self._epoch_inserts: dict = {}
        self._m_queries = TUNER_METRICS["colt_queries_total"].build(self.registry)
        self._m_query_failures = TUNER_METRICS["colt_query_failures_total"].build(self.registry)
        self._m_epochs = TUNER_METRICS["colt_epochs_total"].build(self.registry)
        self._m_whatif_calls = TUNER_METRICS["colt_whatif_calls_total"].build(self.registry)
        self._m_whatif_overhead = TUNER_METRICS["colt_whatif_overhead_cost_total"].build(
            self.registry
        )
        self._m_exec_cost = TUNER_METRICS["colt_execution_cost_total"].build(self.registry)
        self._m_build_cost = TUNER_METRICS["colt_build_cost_total"].build(self.registry)
        self._m_hot_churn = TUNER_METRICS["colt_hot_churn_total"].build(self.registry)
        self._m_insert_rows = TUNER_METRICS["colt_insert_rows_total"].build(self.registry)
        self._m_query_cost = TUNER_METRICS["colt_query_cost"].build(self.registry)
        self._m_epoch_close = TUNER_METRICS["colt_epoch_close_seconds"].build(self.registry)
        self._m_materialized = TUNER_METRICS["colt_materialized_indexes"].build(self.registry)
        self._m_hot = TUNER_METRICS["colt_hot_indexes"].build(self.registry)
        self._m_budget = TUNER_METRICS["colt_whatif_budget"].build(self.registry)
        self._m_ratio = TUNER_METRICS["colt_improvement_ratio"].build(self.registry)
        # Adopt whatever is already materialized as the starting M.
        self.self_organizer.materialized = set(catalog.materialized_indexes())
        self._m_materialized.set(len(self.self_organizer.materialized))
        self._m_budget.set(self.profiler.whatif_budget)
        self.guardrails = guardrails
        if guardrails is not None:
            guardrails.attach(self)
        # Advisory soft preferences pushed down by an external adviser
        # (the fleet co-tuning controller); merged with guardrail
        # constraints at each epoch boundary, pins/bans winning.
        self._advisory: tuple = ()

    # ------------------------------------------------------------------
    def set_advisory(self, preferred) -> None:
        """Install advisory ``(IndexDef, weight)`` soft preferences.

        Used by the fleet's co-tuning loop to bias this replica's
        knapsack toward its workload partition.  The partition's
        footprint is also seeded into the candidate tracker so the
        profiler can credit it without waiting for the miner.  Passing
        an empty sequence clears stale advice.
        """
        self._advisory = tuple(
            sorted(preferred, key=lambda kv: str(kv[0]))
        )
        self.profiler.candidates.seed(ix for ix, _ in self._advisory)

    @property
    def materialized_set(self) -> List[IndexDef]:
        """The current materialized set ``M``."""
        return sorted(self.self_organizer.materialized, key=str)

    @property
    def hot_set(self) -> List[IndexDef]:
        """The current hot set ``H``."""
        return sorted(self.self_organizer.hot, key=str)

    @property
    def queries_seen(self) -> int:
        """Number of queries processed so far."""
        return self._queries_seen

    # ------------------------------------------------------------------
    def process_query(self, query: Query) -> QueryOutcome:
        """Process one arriving (bound) query.

        Optimizes it under the current configuration, profiles candidate
        indexes within the epoch's what-if budget, and -- when the query
        closes an epoch -- runs reorganization and re-budgeting, applying
        any materialization decisions through the scheduler.

        Returns:
            The ledger record for the query.
        """
        with self.tracer.span("query", index=self._queries_seen):
            session = self.whatif.begin_query(query)
            calls_before = self.whatif.call_count

            self.profiler.profile_query(
                query,
                session,
                hot=self.self_organizer.hot,
                materialized=self.self_organizer.materialized,
            )

            verify_calls = 0
            verify_overhead = 0.0
            if self.guardrails is not None:
                # Verification probes re-optimize directly (bypassing
                # the what-if call counter), so profiling accounting
                # above stays untouched; their cost is charged here.
                verify_calls, verify_charge = self.guardrails.observe_query(
                    session, self.self_organizer.materialized
                )
                verify_overhead = (
                    verify_calls * self.config.whatif_call_cost + verify_charge
                )

            self._queries_seen += 1
            build_cost = 0.0
            reorg: Optional[ReorganizationResult] = None
            epoch_ended = self._queries_seen % self.config.epoch_length == 0
            if epoch_ended:
                # Budget accounting must be read before the epoch close
                # resets the profiler's spend counter.
                granted = self.profiler.whatif_budget
                spent = self.profiler.whatif_used
                epoch = self._queries_seen // self.config.epoch_length - 1
                close_started = time.perf_counter()
                with self.tracer.span("epoch_close", epoch=epoch):
                    hot_before = set(self.self_organizer.hot)
                    reorg = self._close_epoch()
                    build_cost = self._apply(reorg)
                self._m_epoch_close.observe(time.perf_counter() - close_started)
                self._record_epoch(reorg, granted, spent, build_cost, hot_before)

        whatif_calls = self.whatif.call_count - calls_before
        whatif_overhead = whatif_calls * self.config.whatif_call_cost
        self._m_queries.inc()
        self._m_whatif_calls.inc(whatif_calls)
        self._m_whatif_overhead.inc(whatif_overhead)
        self._m_exec_cost.inc(session.base.cost)
        self._m_query_cost.observe(session.base.cost)
        return QueryOutcome(
            index=self._queries_seen - 1,
            execution_cost=session.base.cost,
            whatif_calls=whatif_calls,
            whatif_overhead=whatif_overhead,
            build_cost=build_cost,
            total_cost=session.base.cost
            + whatif_overhead
            + verify_overhead
            + build_cost,
            plan=session.base.plan,
            verify_calls=verify_calls,
            verify_overhead=verify_overhead,
            epoch_ended=epoch_ended,
            reorganization=reorg,
        )

    def process_insert(self, table: str, rows=None, count: Optional[int] = None) -> InsertOutcome:
        """Process a batch of inserts (write-aware extension).

        The batch is charged a heap-append cost plus one maintenance
        charge per (row, materialized index on the table); the observed
        write volume feeds the Self-Organizer, which discounts the
        NetBenefit of indexes on write-hot tables accordingly.

        Args:
            table: Target table.
            rows: Concrete rows to insert.  Required when the tuner is
                attached to a physical store (heaps and trees are
                actually updated); optional in pure cost-model mode.
            count: Number of rows when ``rows`` is omitted (statistics-
                only insert).

        Returns:
            The ledger record for the batch.

        Raises:
            ValueError: if neither ``rows`` nor ``count`` is given, or
                if ``rows`` is omitted while a physical store is attached.
        """
        if rows is None and count is None:
            raise ValueError("provide rows or count")
        if self._store is not None:
            if rows is None:
                raise ValueError(
                    "a physical store is attached: concrete rows are required"
                )
            n = self._store.apply_inserts(table, rows)
        else:
            n = len(list(rows)) if rows is not None else int(count)
            self.catalog.apply_row_delta(table, n)
        # The write changes costs on this table; cached what-if gains
        # recorded under the old statistics would no longer validate
        # anyway (stats-token mismatch), but dropping them eagerly
        # keeps the cache small.
        self.profiler.gain_cache.invalidate_table(table)

        params = self.catalog.params
        n_indexes = len(self.catalog.materialized_indexes(table))
        heap_cost = n * params.cpu_tuple_cost
        maintenance = n * n_indexes * params.index_maintain_cost_per_tuple
        self._epoch_inserts[table] = self._epoch_inserts.get(table, 0) + n
        self._m_insert_rows.inc(n)
        return InsertOutcome(
            table=table,
            count=n,
            heap_cost=heap_cost,
            maintenance_cost=maintenance,
            total_cost=heap_cost + maintenance,
        )

    def run(self, queries, on_error: str = "raise") -> List[QueryOutcome]:
        """Process a sequence of queries, returning all ledger records.

        Args:
            queries: Bound queries in arrival order.
            on_error: ``"raise"`` propagates the first failure
                (discarding nothing the caller already holds, but ending
                the run); ``"skip"`` records the failed query as a
                zero-cost :class:`QueryOutcome` carrying its exception
                and keeps going, so one bad query no longer discards all
                prior ledger records.

        Raises:
            ValueError: for an unknown ``on_error`` mode.
        """
        if on_error not in ("raise", "skip"):
            raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
        outcomes: List[QueryOutcome] = []
        for query in queries:
            seen_before = self._queries_seen
            try:
                outcomes.append(self.process_query(query))
            except Exception as exc:
                if on_error == "raise":
                    raise
                # Keep the epoch clock ticking for the failed arrival
                # unless process_query already counted it.
                if self._queries_seen == seen_before:
                    self._queries_seen += 1
                self._m_query_failures.inc()
                outcomes.append(
                    QueryOutcome(
                        index=self._queries_seen - 1,
                        execution_cost=0.0,
                        whatif_calls=0,
                        whatif_overhead=0.0,
                        build_cost=0.0,
                        total_cost=0.0,
                        plan=None,
                        error=exc,
                    )
                )
        return outcomes

    # ------------------------------------------------------------------
    @property
    def metrics(self) -> MetricsRegistry:
        """The tuner's metrics registry (shared with its components)."""
        return self.registry

    def metrics_snapshot(self) -> Dict:
        """Self-describing snapshot: metric families, overhead, spans."""
        return build_snapshot(
            self.registry.snapshot(),
            overhead=self.dashboard.to_rows(),
            spans=self.tracer.summary(),
        )

    def _record_epoch(
        self,
        reorg: ReorganizationResult,
        granted: int,
        spent: int,
        build_cost: float,
        hot_before: set,
    ) -> None:
        """Fold one epoch boundary into metrics and the dashboard."""
        self._m_epochs.inc()
        self._m_build_cost.inc(build_cost)
        hot_after = set(self.self_organizer.hot)
        self._m_hot_churn.inc(len(hot_before.symmetric_difference(hot_after)))
        self._m_materialized.set(len(self.self_organizer.materialized))
        self._m_hot.set(len(hot_after))
        self._m_budget.set(reorg.whatif_budget)
        self._m_ratio.set(reorg.improvement_ratio)
        self.dashboard.record(
            requested=self.config.max_whatif_per_epoch,
            granted=granted,
            spent=spent,
            ratio=reorg.improvement_ratio,
            build_cost=build_cost,
            breaker_state=reorg.breaker_state,
        )

    def _close_epoch(self) -> ReorganizationResult:
        report = self.profiler.end_epoch(
            hot=self.self_organizer.hot,
            materialized=self.self_organizer.materialized,
        )
        inserts = self._epoch_inserts
        self._epoch_inserts = {}
        constraints = None
        decisions = None
        if self.guardrails is not None:
            # Guardrail verdicts land first, so a fresh quarantine is
            # already a hard ban for this boundary's knapsack (the
            # banned index falls out of the selection and is dropped).
            decisions = self.guardrails.end_epoch(self.self_organizer.materialized)
            constraints = self.guardrails.constraints() or None
        # Advisory co-tuning preferences are soft and never override
        # pins/bans; with no advisory installed this is a no-op, so the
        # cotune-off path stays bit-identical.
        constraints = synthesize_constraints(constraints, self._advisory)
        reorg = self.self_organizer.end_epoch(
            report, self.profiler, inserts=inserts, constraints=constraints
        )
        if decisions is not None:
            reorg.quarantined = decisions.quarantined
            reorg.released = decisions.released
        return reorg

    def _apply(self, reorg: ReorganizationResult) -> float:
        # Retry previously failed builds whose backoff elapsed, then
        # apply this boundary's fresh decisions.
        retry = self.scheduler.advance_epoch()
        build_cost = retry.charged
        for index in retry.recovered:
            self.self_organizer.materialized.add(index)
        build_cost += self.scheduler.request_materialization(reorg.materialize)
        self.scheduler.request_drop(reorg.drop)
        if self.guardrails is not None and reorg.drop:
            # Dropped indexes' verification evidence is stale by
            # definition; a re-materialized index re-earns its verdict.
            self.guardrails.on_drop(reorg.drop)
        # A failed build leaves the index unmaterialized: take it back
        # out of M so NetBenefit and the knapsack see reality, and
        # surface it on the ledger record.  Idle-policy requests are
        # merely queued, not failed.
        queued = set(self.scheduler.pending)
        failed = [
            ix
            for ix in reorg.materialize
            if not self.catalog.is_materialized(ix) and ix not in queued
        ]
        for index in failed:
            self.self_organizer.materialized.discard(index)
        reorg.build_failures = failed
        reorg.recovered_builds = list(retry.recovered)
        reorg.abandoned_builds = list(retry.abandoned)
        reorg.breaker_state = self.profiler.breaker.state.value
        if reorg.materialize or reorg.drop or retry.recovered:
            self.profiler.purge_stale()
        self.profiler.set_budget(reorg.whatif_budget)
        return build_cost
