"""CLT-style confidence intervals over sampled query gains.

The Profiler keeps one :class:`GainStats` per (index, cluster) pair.
Samples arrive from what-if calls; the interval
``[LowGain, HighGain]`` summarizes the average gain of a cluster query
with a fixed confidence level (the paper cites Student/CLT bounds with
90% confidence).  Lower bounds drive conservative benefit estimates for
unprofiled queries; upper bounds drive the Self-Organizer's optimistic
re-budgeting scenario.
"""

from __future__ import annotations

import math
from typing import Tuple

# Standard normal quantiles for the confidence levels the paper's
# experiments plausibly use; intermediate levels are interpolated.
_Z_TABLE = (
    (0.80, 1.282),
    (0.90, 1.645),
    (0.95, 1.960),
    (0.99, 2.576),
)


def z_value(confidence: float) -> float:
    """Two-sided normal quantile for a confidence level in [0.5, 1)."""
    if confidence <= _Z_TABLE[0][0]:
        return _Z_TABLE[0][1] * confidence / _Z_TABLE[0][0]
    for (c1, z1), (c2, z2) in zip(_Z_TABLE, _Z_TABLE[1:]):
        if confidence <= c2:
            t = (confidence - c1) / (c2 - c1)
            return z1 + t * (z2 - z1)
    return _Z_TABLE[-1][1]


class GainStats:
    """Streaming mean/variance of gain samples with CLT bounds.

    Uses Welford's algorithm for numerical stability.  With zero samples
    the interval is maximally uninformative: ``LowGain = 0`` and
    ``HighGain = +inf`` (callers substitute a crude optimistic estimate
    for the unbounded side).  With one sample the spread is taken to be
    the sample magnitude itself, a deliberately wide prior.
    """

    __slots__ = ("count", "_mean", "_m2", "_z")

    def __init__(self, confidence: float = 0.90) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._z = z_value(confidence)

    def add(self, gain: float) -> None:
        """Record one measured gain."""
        self.count += 1
        delta = gain - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (gain - self._mean)

    @property
    def mean(self) -> float:
        """Sample mean gain (0 with no samples)."""
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 with fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def half_width(self) -> float:
        """Half-width of the confidence interval around the mean.

        With a single sample the spread is unknown; we use half the
        sample magnitude as a wide-but-not-vacuous prior (a zero lower
        bound would make one-off measurements worthless to the
        conservative estimator).
        """
        if self.count == 0:
            return math.inf
        if self.count == 1:
            return 0.5 * abs(self._mean)
        return self._z * self.stddev / math.sqrt(self.count)

    def interval(self) -> Tuple[float, float]:
        """The confidence interval ``[LowGain, HighGain]``.

        The lower bound is floored at 0 -- a negative average gain is
        never *acted on* more strongly than "no gain", matching the
        conservative-materialization policy.
        """
        if self.count == 0:
            return 0.0, math.inf
        hw = self.half_width()
        return max(0.0, self._mean - hw), self._mean + hw

    @property
    def low(self) -> float:
        """``LowGain``: conservative average gain."""
        return self.interval()[0]

    @property
    def high(self) -> float:
        """``HighGain``: optimistic average gain."""
        return self.interval()[1]

    def relative_uncertainty(self) -> float:
        """Half-width relative to the mean magnitude.

        Used by adaptive sampling: large values mean the estimate is
        imprecise and more what-if calls should target this pair.
        Unprofiled pairs report infinity.
        """
        if self.count == 0:
            return math.inf
        scale = abs(self._mean) + 1e-9
        return self.half_width() / scale
