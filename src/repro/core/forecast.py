"""Benefit forecasting and the NetBenefit metric (§5).

The system keeps, per index, a window of per-epoch measured benefits.
At reorganization time it predicts the benefit for each of the next
``h`` epochs: the forecast ``PredBenefit_j`` for the ``j``-th future
epoch is "computed taking all of the past ``j`` epochs into account" --
we realize this as the mean of the last ``j`` windowed measurements, so
near-term forecasts weigh recent behaviour and far-term forecasts spread
over the whole memory.  Then

    NetBenefit(I) = sum_{j=1..h} PredBenefit_j(I) - MatCost(I)

with ``MatCost(I) = 0`` for already-materialized indexes.

This windowed design is deliberately what produces the Figure 6 noise
band: a burst roughly as long as the window dominates every forecast
horizon and is mistaken for a shift.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Sequence


class BenefitHistory:
    """Sliding window of per-epoch benefits for one index."""

    __slots__ = ("_window",)

    def __init__(self, history_epochs: int) -> None:
        self._window: Deque[float] = deque(maxlen=history_epochs)

    def record(self, benefit: float) -> None:
        """Append the benefit measured for the epoch just ended."""
        self._window.append(benefit)

    def values(self) -> List[float]:
        """Windowed benefits, oldest first."""
        return list(self._window)

    def clear(self) -> None:
        """Forget all history (used when statistics become inconsistent)."""
        self._window.clear()

    def __len__(self) -> int:
        return len(self._window)


# Smallest averaging window used by any forecast term.  With short
# epochs (w = 10) a single epoch's benefit is Poisson-noisy -- a
# one-epoch forecast term would flip knapsack near-ties every epoch, so
# even the nearest-horizon forecast averages at least this many epochs.
MIN_FORECAST_WINDOW = 6


def predicted_benefit(
    history: Sequence[float], j: int, min_window: int = MIN_FORECAST_WINDOW
) -> float:
    """``PredBenefit_j``: forecast for the ``j``-th future epoch.

    The mean of the last ``max(j, min_window)`` recorded benefits (or of
    all of them when fewer exist).  Returns 0 with no history.
    """
    if not history:
        return 0.0
    span = max(j, min_window)
    window = list(history[-span:]) if span < len(history) else list(history)
    return sum(window) / len(window)


def total_predicted_benefit(
    history: Sequence[float],
    horizon: int,
    min_window: int = MIN_FORECAST_WINDOW,
) -> float:
    """Sum of ``PredBenefit_j`` for ``j = 1..horizon``."""
    if not history:
        return 0.0
    return sum(
        predicted_benefit(history, j, min_window) for j in range(1, horizon + 1)
    )


def net_benefit(
    history: Sequence[float],
    horizon: int,
    materialization_cost: float,
    min_window: int = MIN_FORECAST_WINDOW,
) -> float:
    """``NetBenefit``: forecasted benefit minus materialization cost.

    Benefits in the history are *per-query averages* for each epoch;
    callers scale ``materialization_cost`` consistently (see
    ``ColtConfig.matcost_weight``).
    """
    return total_predicted_benefit(history, horizon, min_window) - materialization_cost
