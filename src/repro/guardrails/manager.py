"""The guardrail manager: verification, quarantine, and advice, wired.

One :class:`GuardrailManager` rides along with one
:class:`~repro.core.colt.ColtTuner`.  Per query it spends a bounded
number of verification probes on the materialized indexes the chosen
plan actually used; per epoch it turns REGRESSED verdicts into
quarantine admissions and hands the Self-Organizer a
:class:`~repro.core.knapsack.SelectionConstraints` combining DBA advice
(pin/ban/prefer) with quarantine hard bans and any fleet-rollout bans
the coordinator pushed down.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.knapsack import SelectionConstraints
from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.guardrails.advice import AdviceBook
from repro.guardrails.quarantine import Quarantine
from repro.guardrails.verify import (
    CostObserver,
    IndexVerifier,
    PlanCostObserver,
    Verdict,
)
from repro.obs.names import GUARDRAIL_METRICS
from repro.obs.registry import MetricsRegistry


@dataclasses.dataclass(frozen=True)
class GuardrailConfig:
    """Guardrail tuning knobs.

    Kept separate from :class:`~repro.core.config.ColtConfig` so old
    tuner snapshots (which round-trip ``ColtConfig`` field-for-field)
    keep restoring unchanged.

    Attributes:
        verify_window: Observations per index before a verdict.
        quarantine_ratio: Observed/predicted savings ratio below which
            an index is REGRESSED.
        quarantine_epochs: Epochs a quarantined index stays hard-banned
            before parole.
        verify_budget_per_epoch: Max verification probes per epoch; each
            probe is one extra optimizer call plus (with an execution
            observer) a shadow execution.
        min_predicted_fraction: Predicted relative savings below this
            count as "nothing promised" -- never REGRESSED.
        shadow_cost_factor: Fraction of a shadow execution's observed
            cost charged as overhead (execution observer only).
    """

    verify_window: int = 8
    quarantine_ratio: float = 0.5
    quarantine_epochs: int = 6
    verify_budget_per_epoch: int = 4
    min_predicted_fraction: float = 0.01
    shadow_cost_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.verify_window < 1:
            raise ValueError("verify_window must be positive")
        if not 0.0 < self.quarantine_ratio:
            raise ValueError("quarantine_ratio must be positive")
        if self.quarantine_epochs < 1:
            raise ValueError("quarantine_epochs must be positive")
        if self.verify_budget_per_epoch < 1:
            raise ValueError("verify_budget_per_epoch must be positive")
        if self.shadow_cost_factor < 0.0:
            raise ValueError("shadow_cost_factor must be non-negative")

    def to_dict(self) -> Dict:
        """JSON-compatible serialization."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "GuardrailConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


@dataclasses.dataclass
class GuardrailDecisions:
    """What the guardrails did at one epoch boundary.

    Attributes:
        quarantined: Indexes admitted (or re-admitted) to quarantine
            this boundary; COLT must drop them.
        released: Indexes released from quarantine this boundary
            (parole verification passed, or parole expired unused).
    """

    quarantined: List[IndexDef] = dataclasses.field(default_factory=list)
    released: List[IndexDef] = dataclasses.field(default_factory=list)


class GuardrailManager:
    """Per-tuner guardrail state machine.

    Args:
        config: Guardrail knobs; defaults follow the module docstring.
        observer: How observed costs are priced; defaults to
            :class:`~repro.guardrails.verify.PlanCostObserver` (pure
            cost-model mode, decisions provably unchanged).
        advice: DBA pin/ban/prefer directives; resolved against the
            tuner's catalog at :meth:`attach` time.
    """

    def __init__(
        self,
        config: Optional[GuardrailConfig] = None,
        observer: Optional[CostObserver] = None,
        advice: Optional[AdviceBook] = None,
    ) -> None:
        self.config = config or GuardrailConfig()
        self.observer = observer or PlanCostObserver()
        self.advice = advice or AdviceBook()
        self.verifier = IndexVerifier(
            window=self.config.verify_window,
            quarantine_ratio=self.config.quarantine_ratio,
            min_predicted_fraction=self.config.min_predicted_fraction,
        )
        self.quarantine = Quarantine(cooldown_epochs=self.config.quarantine_epochs)
        self._pinned: List[IndexDef] = []
        self._banned: List[IndexDef] = []
        self._preferred: List[Tuple[IndexDef, float]] = []
        self._rollout_bans: List[IndexDef] = []
        self._epoch_probes = 0
        self._backend = None
        self._catalog: Optional[Catalog] = None
        self._metrics: Optional[Dict] = None

    # ------------------------------------------------------------------
    def attach(self, tuner) -> None:
        """Bind to a tuner: resolve advice, register metrics.

        Called by :class:`~repro.core.colt.ColtTuner` when constructed
        with a guardrail manager.
        """
        self._catalog = tuner.catalog
        self._backend = getattr(tuner, "backend", None)
        if self._backend is None and getattr(tuner, "optimizer", None) is not None:
            # Legacy tuners expose only an optimizer; wrap it so the
            # verification path below speaks one protocol.
            from repro.backend.local import LocalBackend

            self._backend = LocalBackend(optimizer=tuner.optimizer)
        self._pinned, self._banned, self._preferred = self.advice.resolve(
            tuner.catalog
        )
        self._build_metrics(tuner.registry)

    def _build_metrics(self, registry: MetricsRegistry) -> None:
        self._metrics = {
            name: spec.build(registry) for name, spec in GUARDRAIL_METRICS.items()
        }
        self._metrics["guardrail_pinned_indexes"].set(len(self._pinned))
        self._refresh_gauges()

    def _refresh_gauges(self) -> None:
        if self._metrics is None:
            return
        self._metrics["guardrail_quarantined_indexes"].set(len(self.quarantine))
        self._metrics["guardrail_banned_indexes"].set(
            len(self._banned) + len(self.quarantine.blocked()) + len(self._rollout_bans)
        )

    @property
    def pinned(self) -> List[IndexDef]:
        """Advice-pinned indexes (resolved; empty before attach)."""
        return list(self._pinned)

    @property
    def banned(self) -> List[IndexDef]:
        """Advice-banned indexes (resolved; empty before attach)."""
        return list(self._banned)

    # ------------------------------------------------------------------
    def observe_query(self, session, materialized: Iterable[IndexDef]) -> Tuple[int, float]:
        """Spend verification probes on the indexes this query's plan used.

        Each probe re-optimizes the query with one used index removed
        (a reverse what-if, sharing the session's plan cache) and asks
        the observer to price both plans.  Probes are bounded by
        ``verify_budget_per_epoch`` and skipped for indexes whose
        verdict is already in.

        Args:
            session: The query's :class:`WhatIfSession` (already holds
                the base optimization).
            materialized: The tuner's current set ``M``.

        Returns:
            (probe count, overhead cost charged) for this query.
        """
        if self._backend is None:
            return 0, 0.0
        if not self._backend.capabilities.reverse_whatif:
            # Verification is a reverse what-if; on backends that cannot
            # hide a materialized index (HypoPG) it degrades to a no-op.
            return 0, 0.0
        mat = frozenset(materialized)
        calls = 0
        charge = 0.0
        for index in sorted(session.base.plan.indexes_used(), key=str):
            if self._epoch_probes >= self.config.verify_budget_per_epoch:
                break
            if index not in mat or not self.verifier.needs_samples(index):
                continue
            without = self._backend.optimize(
                session.query, config=mat - {index}, session=session
            )
            observation = self.observer.observe(
                session, without.plan, session.base.cost, without.cost
            )
            state = self.verifier.record(index, observation)
            self._epoch_probes += 1
            calls += 1
            charge += observation.charge
            if self._metrics is not None:
                self._metrics["guardrail_verifications_total"].inc()
                self._metrics["guardrail_verification_overhead_cost_total"].inc(
                    observation.charge
                )
                if state.verdict is not Verdict.PENDING:
                    # samples just reached the window: the verdict is new.
                    self._metrics["guardrail_verdicts_total"].inc(
                        verdict=state.verdict.value
                    )
                    if state.ratio is not None:
                        self._metrics["guardrail_observed_predicted_ratio"].observe(
                            state.ratio
                        )
        return calls, charge

    # ------------------------------------------------------------------
    def end_epoch(self, materialized: Iterable[IndexDef]) -> GuardrailDecisions:
        """Advance quarantine clocks and act on fresh verdicts.

        REGRESSED indexes still in ``M`` (and not pinned) are admitted
        to quarantine -- the caller must drop them; parolees that were
        re-materialized and re-verified clean are released.
        """
        mat = set(materialized)
        decisions = GuardrailDecisions()
        decisions.released.extend(self.quarantine.tick_epoch(mat))
        pinned_keys = {(ix.table, ix.columns) for ix in self._pinned}
        for state in list(self.verifier.states):
            if state.verdict is not Verdict.REGRESSED:
                continue
            if state.index not in mat:
                continue
            if (state.index.table, state.index.columns) in pinned_keys:
                continue
            self.quarantine.admit(state.index, state.ratio or 0.0)
            self.verifier.reset(state.index)
            decisions.quarantined.append(state.index)
        for entry in list(self.quarantine.entries):
            if (
                entry.state == "parole"
                and entry.index in mat
                and self.verifier.verdict_for(entry.index) is Verdict.VERIFIED
            ):
                self.quarantine.clear(entry.index)
                decisions.released.append(entry.index)
        self._epoch_probes = 0
        if self._metrics is not None:
            self._metrics["guardrail_quarantines_total"].inc(
                len(decisions.quarantined)
            )
            self._metrics["guardrail_releases_total"].inc(len(decisions.released))
            self._refresh_gauges()
        return decisions

    def constraints(self) -> SelectionConstraints:
        """The combined knapsack constraints in force right now."""
        pinned = frozenset(self._pinned)
        banned = frozenset(
            ix
            for ix in (*self._banned, *self.quarantine.blocked(), *self._rollout_bans)
            if ix not in pinned
        )
        preferred = tuple(
            (ix, weight)
            for ix, weight in self._preferred
            if ix not in pinned and ix not in banned
        )
        return SelectionConstraints(
            pinned=pinned, banned=banned, preferred=preferred
        )

    def set_rollout_bans(self, indexes: Iterable[IndexDef]) -> None:
        """Replace the coordinator-pushed rollout bans (canary staging)."""
        self._rollout_bans = sorted(set(indexes), key=str)
        self._refresh_gauges()

    @property
    def rollout_bans(self) -> List[IndexDef]:
        """Indexes banned on this tuner pending canary verification."""
        return list(self._rollout_bans)

    def on_drop(self, indexes: Iterable[IndexDef]) -> None:
        """Forget verification evidence for indexes leaving ``M``."""
        for index in indexes:
            self.verifier.reset(index)

    def verdict_for(self, index: IndexDef) -> Verdict:
        """Current verification verdict for an index."""
        return self.verifier.verdict_for(index)

    # ------------------------------------------------------------------
    def audit(self, materialized: Iterable[IndexDef] = ()) -> List[Dict]:
        """Per-index guardrail report rows (the ``audit`` CLI's data).

        Covers every index that is materialized, tracked by the
        verifier, in quarantine, or named by advice.
        """
        mat = {(ix.table, ix.columns): ix for ix in materialized}
        rows: Dict[Tuple[str, Tuple[str, ...]], Dict] = {}

        def row_for(index: IndexDef) -> Dict:
            key = (index.table, index.columns)
            if key not in rows:
                rows[key] = {
                    "index": f"{index.table}.{'+'.join(index.columns)}",
                    "table": index.table,
                    "columns": list(index.columns),
                    "materialized": key in mat,
                    "pinned": False,
                    "banned": False,
                    "preferred_weight": None,
                    "samples": 0,
                    "predicted_fraction": None,
                    "observed_fraction": None,
                    "ratio": None,
                    "verdict": Verdict.PENDING.value,
                    "quarantine": None,
                }
            return rows[key]

        for index in mat.values():
            row_for(index)
        for state in self.verifier.states:
            row = row_for(state.index)
            row["samples"] = state.samples
            if state.predicted_without > 0.0:
                row["predicted_fraction"] = (
                    state.predicted_gain / state.predicted_without
                )
            if state.observed_without > 0.0:
                row["observed_fraction"] = (
                    state.observed_gain / state.observed_without
                )
            row["ratio"] = state.ratio
            row["verdict"] = state.verdict.value
        for entry in self.quarantine.entries:
            row = row_for(entry.index)
            row["quarantine"] = {
                "state": entry.state,
                "ratio": entry.ratio,
                "strikes": entry.strikes,
                "cooldown_remaining": entry.cooldown_remaining,
                "parole_ticks": entry.parole_ticks,
            }
        for index in self._pinned:
            row_for(index)["pinned"] = True
        for index in self._banned:
            row_for(index)["banned"] = True
        for index, weight in self._preferred:
            row_for(index)["preferred_weight"] = weight
        for index in self._rollout_bans:
            row_for(index)["banned"] = True
        return [rows[key] for key in sorted(rows)]

    # ------------------------------------------------------------------
    def to_snapshot(self) -> Dict:
        """JSON-compatible serialization of all guardrail state."""
        return {
            "config": self.config.to_dict(),
            "advice": self.advice.to_snapshot(),
            "quarantine": self.quarantine.to_snapshot(),
            "verifier": self.verifier.to_snapshot(),
            "epoch_probes": self._epoch_probes,
        }

    @classmethod
    def from_snapshot(
        cls,
        data: Dict,
        catalog: Catalog,
        observer: Optional[CostObserver] = None,
    ) -> "GuardrailManager":
        """Rebuild a manager from :meth:`to_snapshot` output.

        Observers do not serialize (an execution observer holds a live
        store); pass one explicitly or accept the plan-cost default.
        """
        manager = cls(
            config=GuardrailConfig.from_dict(data["config"]),
            observer=observer,
            advice=AdviceBook.from_snapshot(data.get("advice", [])),
        )
        manager.quarantine = Quarantine.from_snapshot(data["quarantine"], catalog)
        manager.verifier.restore(data.get("verifier", []), catalog)
        manager._epoch_probes = int(data.get("epoch_probes", 0))
        return manager
