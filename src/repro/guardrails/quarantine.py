"""Index quarantine: cooldown jail for indexes that failed verification.

When observed benefit falls far short of predicted benefit, dropping the
index is not enough -- the what-if optimizer still over-promises, so the
very next reorganization would re-materialize it.  Quarantine closes
that loop: each offending index gets its own
:class:`~repro.resilience.breaker.CircuitBreaker` (the same state
machinery that guards what-if profiling), tripped OPEN on entry:

* **OPEN** (``"quarantined"``) -- the index is a hard ban for the
  knapsack and the hot set.  The breaker clock ticks once per epoch
  boundary; after ``cooldown`` ticks it goes HALF_OPEN.
* **HALF_OPEN** (``"parole"``) -- the ban lifts.  If COLT
  re-materializes the index, a fresh verification round runs: a second
  REGRESSED verdict re-trips the breaker (cooldown restarts, strikes
  increment), a VERIFIED verdict closes it and the entry is released.
  An index that stays unmaterialized through a whole parole window is
  also released -- the forecast moved on without it.

Entries serialize to plain JSON so quarantine state survives snapshot
save/restore (the whole point: a restart must not amnesty a bad index).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.resilience.breaker import BreakerState, CircuitBreaker

#: Epochs an index spends OPEN before parole, by default.
DEFAULT_COOLDOWN_EPOCHS = 6

IndexKey = Tuple[str, Tuple[str, ...]]


def _key(index: IndexDef) -> IndexKey:
    return index.table, index.columns


@dataclasses.dataclass
class QuarantineEntry:
    """One index's stay in quarantine.

    Attributes:
        index: The quarantined index.
        ratio: The observed/predicted benefit ratio that triggered the
            latest quarantine.
        entered_epoch: Epoch counter value at the latest trip.
        strikes: How many times this index has been quarantined.
        breaker: The entry's cooldown state machine.
        parole_ticks: Epochs spent HALF_OPEN without re-materialization.
    """

    index: IndexDef
    ratio: float
    entered_epoch: int
    strikes: int = 1
    breaker: CircuitBreaker = dataclasses.field(default=None)  # type: ignore[assignment]
    parole_ticks: int = 0

    @property
    def state(self) -> str:
        """``"quarantined"`` (OPEN) or ``"parole"`` (HALF_OPEN)."""
        if self.breaker.state is BreakerState.OPEN:
            return "quarantined"
        return "parole"

    @property
    def cooldown_remaining(self) -> int:
        """Epochs left before parole (0 once HALF_OPEN)."""
        if self.breaker.state is not BreakerState.OPEN:
            return 0
        return max(0, self.breaker.cooldown_ticks - self.breaker._cooldown)  # noqa: SLF001


class Quarantine:
    """The set of quarantined indexes, ticked at epoch boundaries.

    Args:
        cooldown_epochs: Epochs an index stays OPEN (hard-banned) per
            quarantine; repeat offenders serve the same term again.
    """

    def __init__(self, cooldown_epochs: int = DEFAULT_COOLDOWN_EPOCHS) -> None:
        if cooldown_epochs < 1:
            raise ValueError("cooldown_epochs must be positive")
        self.cooldown_epochs = cooldown_epochs
        self._entries: Dict[IndexKey, QuarantineEntry] = {}
        self._epoch = 0
        self.total_quarantines = 0
        self.total_releases = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, index: IndexDef) -> bool:
        return _key(index) in self._entries

    @property
    def entries(self) -> List[QuarantineEntry]:
        """Current entries, name-sorted for stable iteration."""
        return [self._entries[k] for k in sorted(self._entries)]

    def entry_for(self, index: IndexDef) -> Optional[QuarantineEntry]:
        """The entry for an index, if it is in quarantine or on parole."""
        return self._entries.get(_key(index))

    def blocked(self) -> List[IndexDef]:
        """Indexes currently hard-banned (breaker OPEN)."""
        return [
            e.index
            for e in self.entries
            if e.breaker.state is BreakerState.OPEN
        ]

    # ------------------------------------------------------------------
    def admit(self, index: IndexDef, ratio: float) -> QuarantineEntry:
        """Quarantine an index (or re-trip a parolee).

        Returns:
            The (new or re-tripped) entry, breaker OPEN.
        """
        key = _key(index)
        entry = self._entries.get(key)
        if entry is None:
            breaker = CircuitBreaker(
                failure_threshold=1,
                cooldown_ticks=self.cooldown_epochs,
                recovery_threshold=1,
            )
            entry = QuarantineEntry(
                index=index,
                ratio=ratio,
                entered_epoch=self._epoch,
                breaker=breaker,
            )
            self._entries[key] = entry
        else:
            entry.strikes += 1
            entry.ratio = ratio
            entry.entered_epoch = self._epoch
            entry.parole_ticks = 0
        entry.breaker.record_failure()
        self.total_quarantines += 1
        return entry

    def clear(self, index: IndexDef) -> bool:
        """Release an index outright (e.g. its parole verification passed)."""
        entry = self._entries.pop(_key(index), None)
        if entry is None:
            return False
        if entry.breaker.state is not BreakerState.CLOSED:
            entry.breaker.record_success()
        self.total_releases += 1
        return True

    def tick_epoch(self, materialized: Iterable[IndexDef]) -> List[IndexDef]:
        """Advance every entry's cooldown clock by one epoch.

        Args:
            materialized: The current materialized set; a parolee that
                is back in ``M`` is being re-verified, so its parole
                clock holds.

        Returns:
            Indexes released this tick (parole expired unused).
        """
        self._epoch += 1
        in_m = {_key(ix) for ix in materialized}
        released: List[IndexDef] = []
        for key in sorted(self._entries):
            entry = self._entries[key]
            entry.breaker.tick()
            if entry.breaker.state is BreakerState.HALF_OPEN and key not in in_m:
                entry.parole_ticks += 1
                if entry.parole_ticks >= self.cooldown_epochs:
                    released.append(entry.index)
        for index in released:
            self.clear(index)
        return released

    # ------------------------------------------------------------------
    def to_snapshot(self) -> Dict:
        """JSON-compatible serialization of the full quarantine state."""
        return {
            "epoch": self._epoch,
            "cooldown_epochs": self.cooldown_epochs,
            "total_quarantines": self.total_quarantines,
            "total_releases": self.total_releases,
            "entries": [
                {
                    "table": e.index.table,
                    "columns": list(e.index.columns),
                    "ratio": e.ratio,
                    "entered_epoch": e.entered_epoch,
                    "strikes": e.strikes,
                    "state": e.breaker.state.value,
                    "cooldown_progress": e.breaker._cooldown,  # noqa: SLF001
                    "parole_ticks": e.parole_ticks,
                }
                for e in self.entries
            ],
        }

    @classmethod
    def from_snapshot(cls, data: Dict, catalog: Catalog) -> "Quarantine":
        """Rebuild quarantine state against an equivalent catalog."""
        quarantine = cls(cooldown_epochs=int(data["cooldown_epochs"]))
        quarantine._epoch = int(data["epoch"])
        quarantine.total_quarantines = int(data.get("total_quarantines", 0))
        quarantine.total_releases = int(data.get("total_releases", 0))
        for raw in data.get("entries", []):
            columns = list(raw["columns"])
            if len(columns) == 1:
                index = catalog.index_for(raw["table"], columns[0])
            else:
                index = catalog.composite_index_for(raw["table"], columns)
            breaker = CircuitBreaker(
                failure_threshold=1,
                cooldown_ticks=quarantine.cooldown_epochs,
                recovery_threshold=1,
            )
            state = BreakerState(raw["state"])
            if state is not BreakerState.CLOSED:
                breaker.record_failure()  # -> OPEN
                breaker._cooldown = int(raw["cooldown_progress"])  # noqa: SLF001
                if state is BreakerState.HALF_OPEN:
                    breaker._transition(BreakerState.HALF_OPEN)  # noqa: SLF001
            entry = QuarantineEntry(
                index=index,
                ratio=float(raw["ratio"]),
                entered_epoch=int(raw["entered_epoch"]),
                strikes=int(raw["strikes"]),
                breaker=breaker,
                parole_ticks=int(raw.get("parole_ticks", 0)),
            )
            quarantine._entries[_key(index)] = entry
        return quarantine
