"""Staged fleet rollout: canary-first materialization of new indexes.

In a replicated fleet, a newly recommended index should not appear on
every replica at once -- if the cost model over-promised, the whole
fleet regresses together.  The :class:`RolloutController` (driven by the
:class:`~repro.fleet.coordinator.FleetCoordinator` at fleet epoch
boundaries) stages each *new* index:

1. **CANARY** -- the first replica to materialize the index keeps it;
   every other replica gets a rollout ban (pushed into its
   :class:`~repro.guardrails.manager.GuardrailManager`), so its knapsack
   cannot select the index yet.
2. The canary's guardrails verify the index against observed cost.
   **VERIFIED** promotes the rollout: bans lift fleet-wide and the
   index joins the baseline.  **REGRESSED** (or quarantine on the
   canary) rolls it back: the ban extends to the whole fleet for a
   cooldown, and each replica's own reorganization drops the index.
3. A canary that drains mid-rollout hands the duty to the lowest-id
   healthy replica still holding the index; with no such holder the
   rollout is cancelled (a later materialization starts a fresh one).

Bans are *recomputed wholesale* every reconcile and pushed with
``set_rollout_bans`` -- idempotent, so restores and replays converge.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.guardrails.verify import Verdict

#: Fleet epochs a rolled-back index stays banned fleet-wide.
DEFAULT_ROLLBACK_COOLDOWN = 4

IndexKey = Tuple[str, Tuple[str, ...]]


def _key(index: IndexDef) -> IndexKey:
    return index.table, index.columns


class RolloutStage(enum.Enum):
    """Lifecycle stage of one index rollout."""

    CANARY = "canary"
    PROMOTED = "promoted"
    ROLLED_BACK = "rolled_back"


@dataclasses.dataclass
class RolloutRecord:
    """One index's staged-rollout state.

    Attributes:
        index: The index being rolled out.
        stage: Current lifecycle stage.
        canary_id: Replica currently holding canary duty.
        started_epoch: Fleet epoch the rollout started.
        decided_epoch: Fleet epoch of promotion/rollback (None while
            canary).
        cooldown_remaining: Fleet epochs of fleet-wide ban left after a
            rollback.
        reassignments: Times canary duty moved to another replica.
    """

    index: IndexDef
    stage: RolloutStage
    canary_id: int
    started_epoch: int
    decided_epoch: Optional[int] = None
    cooldown_remaining: int = 0
    reassignments: int = 0


@dataclasses.dataclass
class RolloutSummary:
    """What one reconcile pass did (folded into the fleet ledger).

    Attributes:
        started: Indexes that entered the canary stage this pass.
        promoted: Indexes promoted fleet-wide this pass.
        rolled_back: Indexes rolled back this pass.
        cancelled: Indexes whose rollout was cancelled (canary lost the
            index with no healthy successor).
        reassigned: Canary duties moved to another replica this pass.
        active_canaries: Rollouts still in the canary stage afterwards.
    """

    started: List[IndexDef] = dataclasses.field(default_factory=list)
    promoted: List[IndexDef] = dataclasses.field(default_factory=list)
    rolled_back: List[IndexDef] = dataclasses.field(default_factory=list)
    cancelled: List[IndexDef] = dataclasses.field(default_factory=list)
    reassigned: int = 0
    active_canaries: int = 0


class RolloutController:
    """Coordinator-owned state machine staging new-index rollouts.

    Args:
        baseline: Indexes considered already rolled out (the replicas'
            materialized sets at fleet construction) -- these never
            trigger a canary.
        rollback_cooldown: Fleet epochs a rolled-back index stays
            banned before a fresh rollout may start.
    """

    def __init__(
        self,
        baseline: Sequence[IndexDef] = (),
        rollback_cooldown: int = DEFAULT_ROLLBACK_COOLDOWN,
    ) -> None:
        if rollback_cooldown < 1:
            raise ValueError("rollback_cooldown must be positive")
        self.rollback_cooldown = rollback_cooldown
        self._baseline: Set[IndexKey] = {_key(ix) for ix in baseline}
        self._records: Dict[IndexKey, RolloutRecord] = {}
        self._epoch = 0

    # ------------------------------------------------------------------
    @property
    def records(self) -> List[RolloutRecord]:
        """Current rollout records, name-sorted."""
        return [self._records[k] for k in sorted(self._records)]

    def record_for(self, index: IndexDef) -> Optional[RolloutRecord]:
        """The rollout record tracking an index, if any."""
        return self._records.get(_key(index))

    def stage_for(self, index: IndexDef) -> Optional[RolloutStage]:
        """The index's rollout stage (None: baseline or untracked)."""
        record = self._records.get(_key(index))
        return record.stage if record is not None else None

    # ------------------------------------------------------------------
    def reconcile(self, replicas) -> RolloutSummary:
        """Run one staged-rollout pass over the fleet.

        Args:
            replicas: The fleet's :class:`~repro.fleet.replica.
                TunerReplica` list (guardrail managers are reached via
                ``replica.tuner.guardrails``).

        Returns:
            What changed, for the fleet ledger and metrics.
        """
        from repro.fleet.replica import ReplicaHealth

        self._epoch += 1
        summary = RolloutSummary()
        by_id = {r.replica_id: r for r in replicas}
        healthy = {
            r.replica_id for r in replicas if r.health is not ReplicaHealth.DRAINED
        }
        holders: Dict[IndexKey, List[int]] = {}
        exemplars: Dict[IndexKey, IndexDef] = {}
        for r in replicas:
            for ix in r.tuner.materialized_set:
                holders.setdefault(_key(ix), []).append(r.replica_id)
                exemplars.setdefault(_key(ix), ix)

        self._tick_cooldowns()
        self._advance_canaries(summary, by_id, healthy, holders)
        self._discover(summary, healthy, holders, exemplars)
        self._push_bans(replicas)
        summary.active_canaries = sum(
            1 for rec in self._records.values() if rec.stage is RolloutStage.CANARY
        )
        return summary

    def _tick_cooldowns(self) -> None:
        expired = []
        for key, rec in self._records.items():
            if rec.stage is RolloutStage.ROLLED_BACK:
                rec.cooldown_remaining -= 1
                if rec.cooldown_remaining <= 0:
                    # Cooldown served: forget the record so a future
                    # materialization starts a fresh canary rollout.
                    expired.append(key)
        for key in expired:
            del self._records[key]

    def _advance_canaries(
        self,
        summary: RolloutSummary,
        by_id: Dict,
        healthy: Set[int],
        holders: Dict[IndexKey, List[int]],
    ) -> None:
        for key in sorted(self._records):
            rec = self._records[key]
            if rec.stage is not RolloutStage.CANARY:
                continue
            canary_ok = rec.canary_id in healthy and rec.canary_id in holders.get(
                key, []
            )
            if not canary_ok:
                successors = sorted(
                    rid for rid in holders.get(key, []) if rid in healthy
                )
                if successors:
                    rec.canary_id = successors[0]
                    rec.reassignments += 1
                    summary.reassigned += 1
                else:
                    # Nobody healthy holds the index: cancel outright.
                    del self._records[key]
                    summary.cancelled.append(rec.index)
                    continue
            manager = getattr(by_id[rec.canary_id].tuner, "guardrails", None)
            if manager is None:
                # Canary runs without guardrails: nothing can verify the
                # index, so promotion is the only sane default.
                verdict = Verdict.VERIFIED
            elif rec.index in manager.quarantine:
                verdict = Verdict.REGRESSED
            else:
                verdict = manager.verdict_for(rec.index)
            if verdict is Verdict.VERIFIED:
                rec.stage = RolloutStage.PROMOTED
                rec.decided_epoch = self._epoch
                self._baseline.add(key)
                summary.promoted.append(rec.index)
            elif verdict is Verdict.REGRESSED:
                rec.stage = RolloutStage.ROLLED_BACK
                rec.decided_epoch = self._epoch
                rec.cooldown_remaining = self.rollback_cooldown
                summary.rolled_back.append(rec.index)

    def _discover(
        self,
        summary: RolloutSummary,
        healthy: Set[int],
        holders: Dict[IndexKey, List[int]],
        exemplars: Dict[IndexKey, IndexDef],
    ) -> None:
        for key in sorted(holders):
            if key in self._baseline or key in self._records:
                continue
            healthy_holders = sorted(
                rid for rid in holders[key] if rid in healthy
            )
            if not healthy_holders:
                # Only drained replicas hold it: wait for a holder that
                # can actually run canary verification.
                continue
            record = RolloutRecord(
                index=exemplars[key],
                stage=RolloutStage.CANARY,
                canary_id=healthy_holders[0],
                started_epoch=self._epoch,
            )
            self._records[key] = record
            summary.started.append(record.index)

    def _push_bans(self, replicas) -> None:
        for r in replicas:
            manager = getattr(r.tuner, "guardrails", None)
            if manager is None:
                continue
            bans = []
            for rec in self._records.values():
                if (
                    rec.stage is RolloutStage.CANARY
                    and r.replica_id != rec.canary_id
                ):
                    bans.append(rec.index)
                elif (
                    rec.stage is RolloutStage.ROLLED_BACK
                    and rec.cooldown_remaining > 0
                ):
                    bans.append(rec.index)
            manager.set_rollout_bans(bans)

    # ------------------------------------------------------------------
    def to_snapshot(self) -> Dict:
        """JSON-compatible serialization of the rollout state."""
        return {
            "epoch": self._epoch,
            "rollback_cooldown": self.rollback_cooldown,
            "baseline": sorted(
                [key[0], list(key[1])] for key in self._baseline
            ),
            "records": [
                {
                    "table": rec.index.table,
                    "columns": list(rec.index.columns),
                    "stage": rec.stage.value,
                    "canary_id": rec.canary_id,
                    "started_epoch": rec.started_epoch,
                    "decided_epoch": rec.decided_epoch,
                    "cooldown_remaining": rec.cooldown_remaining,
                    "reassignments": rec.reassignments,
                }
                for rec in self.records
            ],
        }

    @classmethod
    def from_snapshot(cls, data: Dict, catalog: Catalog) -> "RolloutController":
        """Rebuild a controller against an equivalent catalog."""
        controller = cls(rollback_cooldown=int(data["rollback_cooldown"]))
        controller._epoch = int(data["epoch"])
        controller._baseline = {
            (table, tuple(columns)) for table, columns in data.get("baseline", [])
        }
        for raw in data.get("records", []):
            columns = list(raw["columns"])
            if len(columns) == 1:
                index = catalog.index_for(raw["table"], columns[0])
            else:
                index = catalog.composite_index_for(raw["table"], columns)
            record = RolloutRecord(
                index=index,
                stage=RolloutStage(raw["stage"]),
                canary_id=int(raw["canary_id"]),
                started_epoch=int(raw["started_epoch"]),
                decided_epoch=(
                    None
                    if raw.get("decided_epoch") is None
                    else int(raw["decided_epoch"])
                ),
                cooldown_remaining=int(raw.get("cooldown_remaining", 0)),
                reassignments=int(raw.get("reassignments", 0)),
            )
            controller._records[_key(index)] = record
        return controller
