"""Constraint synthesis: merge advisory preferences into guardrails.

The fleet's co-tuning loop (:mod:`repro.fleet.cotune`) specializes each
replica by *advising* its tuner to prefer the index footprint of the
partition routed to it.  Advice is soft -- it only contributes knapsack
value multipliers -- and must never override the hard guardrail surface:
DBA pins and bans, quarantine blocks, and rollout bans always win.  This
module is the single place where the two are combined, so the precedence
rule lives in exactly one function for both engines.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.knapsack import SelectionConstraints

__all__ = ["synthesize_constraints"]


def synthesize_constraints(
    base: Optional[SelectionConstraints],
    advisory: Sequence[Tuple[object, float]],
) -> Optional[SelectionConstraints]:
    """Fold advisory soft preferences into guardrail constraints.

    Args:
        base: The guardrail constraints in force (pins, bans, DBA
            preferences), or None when no guardrails are attached.
        advisory: ``(key, weight)`` soft preferences from an external
            adviser (e.g. the co-tuning controller's partition
            footprint).  Weights must be positive.

    Returns:
        ``base`` unchanged (possibly None) when the advisory is empty --
        the caller's behaviour is provably identical with the feature
        off.  Otherwise a merged :class:`SelectionConstraints` where:

        * pins and bans are taken from ``base`` verbatim (hard
          constraints are never synthesized here);
        * advisory keys that are pinned or banned are dropped -- advice
          must not double-count a pin or soften a ban;
        * an explicit ``base`` preference on the same key wins over the
          advisory weight (the DBA out-ranks the controller);
        * the merged preferences are ordered by ``str(key)`` so the
          result is deterministic across processes.
    """
    if not advisory:
        return base
    pinned = base.pinned if base is not None else frozenset()
    banned = base.banned if base is not None else frozenset()
    merged = dict(base.preferred) if base is not None else {}
    for key, weight in advisory:
        if key in pinned or key in banned:
            continue
        merged.setdefault(key, weight)
    preferred = tuple(sorted(merged.items(), key=lambda kv: str(kv[0])))
    return SelectionConstraints(
        pinned=pinned, banned=banned, preferred=preferred
    )
