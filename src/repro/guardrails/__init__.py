"""Production guardrails: verify, quarantine, stage, and constrain.

Closes the predict->observe->act loop around COLT's what-if-driven
decisions: observed-cost verification per materialized index
(:mod:`repro.guardrails.verify`), breaker-backed quarantine for indexes
that failed it (:mod:`repro.guardrails.quarantine`), DBA pin/ban/prefer
advice (:mod:`repro.guardrails.advice`), canary-first fleet rollout
(:mod:`repro.guardrails.rollout`), all orchestrated per tuner by the
:class:`~repro.guardrails.manager.GuardrailManager`.
"""

from repro.guardrails.advice import AdviceBook, AdviceDirective, AdviceError
from repro.guardrails.manager import (
    GuardrailConfig,
    GuardrailDecisions,
    GuardrailManager,
)
from repro.guardrails.quarantine import Quarantine, QuarantineEntry
from repro.guardrails.rollout import (
    RolloutController,
    RolloutRecord,
    RolloutStage,
    RolloutSummary,
)
from repro.guardrails.verify import (
    CostObserver,
    ExecutionObserver,
    IndexVerifier,
    Observation,
    PlanCostObserver,
    Verdict,
    observed_cost,
)

__all__ = [
    "AdviceBook",
    "AdviceDirective",
    "AdviceError",
    "CostObserver",
    "ExecutionObserver",
    "GuardrailConfig",
    "GuardrailDecisions",
    "GuardrailManager",
    "IndexVerifier",
    "Observation",
    "PlanCostObserver",
    "Quarantine",
    "QuarantineEntry",
    "RolloutController",
    "RolloutRecord",
    "RolloutStage",
    "RolloutSummary",
    "Verdict",
    "observed_cost",
]
