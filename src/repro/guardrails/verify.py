"""Observed-cost verification: does a materialized index deliver?

The what-if optimizer *predicts* each index's benefit; this module
closes the loop by accumulating, per materialized index, an **observed**
benefit alongside the predicted one, and turning the two streams into a
verdict.

Verification math
-----------------

For each sampled query ``q`` whose chosen plan uses index ``I``:

* predicted: ``p_with = cost(q, M)`` (the base optimization) and
  ``p_without = cost(q, M - {I})`` (a reverse what-if);
* observed: ``o_with`` and ``o_without``, the same two plans priced by a
  :class:`CostObserver`.

Sums over the verification window give *relative savings* on each side::

    pred_frac = sum(p_without - p_with) / sum(p_without)
    obs_frac  = sum(o_without - o_with) / sum(o_without)
    ratio     = obs_frac / pred_frac

Comparing savings *fractions* rather than raw cost deltas makes the
verdict scale-free: the observer may price plans in physical-operation
units on a down-sampled store while the optimizer predicts at paper
scale, and an honest index still scores ``ratio ~= 1``.  Once the window
holds ``window`` samples, ``ratio < quarantine_ratio`` is a REGRESSED
verdict; anything else is VERIFIED.  An index whose predicted savings
are negligible is trivially VERIFIED -- nothing was promised.

Observers
---------

* :class:`PlanCostObserver` -- prices both plans with the optimizer's
  own numbers.  Observed equals predicted by construction, so verdicts
  are always VERIFIED and tuning decisions are provably unchanged; what
  remains measurable is the verification *overhead* (the reverse
  what-if probes), which the 1.05x obs bar in the benchmarks covers.
* :class:`ExecutionObserver` -- executes both plans against a
  :class:`~repro.executor.instrument.CountingStore` and weighs the
  physical-operation counters into cost units.  This is the observer
  that catches a misleading cost model: point heap fetches behind an
  index scan are charged at random-page rates, so an index the
  optimizer loves but that actually selects half the table observes
  *negative* benefit.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple

from repro.engine.catalog import Catalog
from repro.engine.cost_params import CostParams
from repro.engine.index import IndexDef
from repro.engine.storage import PhysicalStore
from repro.executor.executor import execute
from repro.executor.instrument import CountingStore, ExecutionCounters
from repro.optimizer.plan import PlanNode
from repro.optimizer.whatif import WhatIfSession

#: Heap rows assumed per sequential page when weighing observed counters.
ROWS_PER_SEQ_PAGE = 64.0

IndexKey = Tuple[str, Tuple[str, ...]]


def _key(index: IndexDef) -> IndexKey:
    return index.table, index.columns


class Verdict(enum.Enum):
    """Verification outcome for one materialized index."""

    PENDING = "pending"
    VERIFIED = "verified"
    REGRESSED = "regressed"


@dataclasses.dataclass
class Observation:
    """One sampled (query, index) verification measurement.

    Attributes:
        predicted_with: Optimizer cost of the plan using the index.
        predicted_without: Optimizer cost of the plan denied the index.
        observed_with: Observer's price for the with-plan.
        observed_without: Observer's price for the without-plan.
        charge: Overhead cost units the observation itself incurred
            (e.g. the shadow execution of the counterfactual plan).
    """

    predicted_with: float
    predicted_without: float
    observed_with: float
    observed_without: float
    charge: float = 0.0


class CostObserver:
    """Interface: price a with/without plan pair for one query."""

    def observe(
        self,
        session: WhatIfSession,
        without_plan: PlanNode,
        predicted_with: float,
        predicted_without: float,
    ) -> Observation:
        """Price both plans; see :class:`Observation`."""
        raise NotImplementedError


class PlanCostObserver(CostObserver):
    """Trusts the optimizer: observed prices are the predicted ones.

    The null observer for pure cost-model simulations, where no
    independent ground truth exists.  Verification then never changes a
    tuning decision; it only exercises (and prices) the machinery.
    """

    def observe(
        self,
        session: WhatIfSession,
        without_plan: PlanNode,
        predicted_with: float,
        predicted_without: float,
    ) -> Observation:
        return Observation(
            predicted_with=predicted_with,
            predicted_without=predicted_without,
            observed_with=predicted_with,
            observed_without=predicted_without,
        )


def observed_cost(counters: ExecutionCounters, params: CostParams) -> float:
    """Weigh physical-operation counters into planner cost units.

    Sequential heap rows amortize their page fetches
    (:data:`ROWS_PER_SEQ_PAGE` rows per sequential page); every index
    entry read drags a *random* heap fetch behind it (the executor
    fetches matched rows by rid), which is exactly the term a
    misleading selectivity estimate hides.
    """
    return (
        counters.heap_rows_read
        * (params.cpu_tuple_cost + params.seq_page_cost / ROWS_PER_SEQ_PAGE)
        + counters.index_searches * params.random_page_cost
        + counters.index_entries_read
        * (params.cpu_index_tuple_cost + params.random_page_cost)
        + counters.heap_cells_read * params.cpu_operator_cost
    )


class ExecutionObserver(CostObserver):
    """Prices plans by executing them on an instrumented physical store.

    Args:
        store: The physical store holding real rows.
        shadow_cost_factor: Fraction of the counterfactual (without-
            plan) execution's observed cost charged as verification
            overhead.  1.0 is honest accounting -- the shadow run does
            real work; lower values model sampled shadow execution.
    """

    def __init__(
        self, store: PhysicalStore, shadow_cost_factor: float = 1.0
    ) -> None:
        self._counting = CountingStore(store)
        self._params = store.catalog.params
        self.shadow_cost_factor = shadow_cost_factor

    def _priced_execution(self, plan: PlanNode) -> float:
        counters = self._counting.counters
        counters.reset()
        execute(plan, self._counting)
        return observed_cost(counters, self._params)

    def observe(
        self,
        session: WhatIfSession,
        without_plan: PlanNode,
        predicted_with: float,
        predicted_without: float,
    ) -> Observation:
        o_with = self._priced_execution(session.base.plan)
        o_without = self._priced_execution(without_plan)
        return Observation(
            predicted_with=predicted_with,
            predicted_without=predicted_without,
            observed_with=o_with,
            observed_without=o_without,
            charge=o_without * self.shadow_cost_factor,
        )


@dataclasses.dataclass
class VerificationState:
    """Accumulated verification evidence for one materialized index."""

    index: IndexDef
    samples: int = 0
    predicted_gain: float = 0.0
    predicted_without: float = 0.0
    observed_gain: float = 0.0
    observed_without: float = 0.0
    verdict: Verdict = Verdict.PENDING
    ratio: Optional[float] = None


class IndexVerifier:
    """Folds observations into per-index verdicts.

    Args:
        window: Samples required before a verdict is issued.
        quarantine_ratio: Observed/predicted savings ratio below which
            the verdict is REGRESSED.
        min_predicted_fraction: Predicted relative savings below this
            are treated as "nothing promised" -- trivially VERIFIED.
    """

    def __init__(
        self,
        window: int = 8,
        quarantine_ratio: float = 0.5,
        min_predicted_fraction: float = 0.01,
    ) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        if quarantine_ratio <= 0.0:
            raise ValueError("quarantine_ratio must be positive")
        self.window = window
        self.quarantine_ratio = quarantine_ratio
        self.min_predicted_fraction = min_predicted_fraction
        self._states: Dict[IndexKey, VerificationState] = {}

    def __len__(self) -> int:
        return len(self._states)

    @property
    def states(self) -> List[VerificationState]:
        """Every tracked index's state, name-sorted."""
        return [self._states[k] for k in sorted(self._states)]

    def state_for(self, index: IndexDef) -> Optional[VerificationState]:
        """The state for one index, if it has ever been sampled."""
        return self._states.get(_key(index))

    def verdict_for(self, index: IndexDef) -> Verdict:
        """Current verdict for an index (PENDING when never sampled)."""
        state = self._states.get(_key(index))
        return state.verdict if state is not None else Verdict.PENDING

    def needs_samples(self, index: IndexDef) -> bool:
        """Whether this index still needs observations for a verdict."""
        state = self._states.get(_key(index))
        return state is None or state.verdict is Verdict.PENDING

    # ------------------------------------------------------------------
    def record(self, index: IndexDef, observation: Observation) -> VerificationState:
        """Fold one observation in and refresh the index's verdict."""
        state = self._states.setdefault(
            _key(index), VerificationState(index=index)
        )
        state.samples += 1
        state.predicted_gain += (
            observation.predicted_without - observation.predicted_with
        )
        state.predicted_without += observation.predicted_without
        state.observed_gain += (
            observation.observed_without - observation.observed_with
        )
        state.observed_without += observation.observed_without
        if state.samples >= self.window:
            state.ratio = self._ratio(state)
            state.verdict = (
                Verdict.REGRESSED
                if state.ratio is not None
                and state.ratio < self.quarantine_ratio
                else Verdict.VERIFIED
            )
        return state

    def _ratio(self, state: VerificationState) -> Optional[float]:
        """Scale-free observed/predicted savings ratio (None: no promise)."""
        if state.predicted_without <= 0.0 or state.observed_without <= 0.0:
            return None
        pred_frac = state.predicted_gain / state.predicted_without
        if pred_frac < self.min_predicted_fraction:
            return None
        obs_frac = state.observed_gain / state.observed_without
        return obs_frac / pred_frac

    def reset(self, index: IndexDef) -> None:
        """Forget an index's evidence (it left the materialized set)."""
        self._states.pop(_key(index), None)

    # ------------------------------------------------------------------
    def to_snapshot(self) -> List[Dict]:
        """JSON-compatible serialization of every tracked state."""
        return [
            {
                "table": s.index.table,
                "columns": list(s.index.columns),
                "samples": s.samples,
                "predicted_gain": s.predicted_gain,
                "predicted_without": s.predicted_without,
                "observed_gain": s.observed_gain,
                "observed_without": s.observed_without,
                "verdict": s.verdict.value,
                "ratio": s.ratio,
            }
            for s in self.states
        ]

    def restore(self, entries: List[Dict], catalog: Catalog) -> None:
        """Rebuild tracked states against an equivalent catalog."""
        for raw in entries:
            columns = list(raw["columns"])
            if len(columns) == 1:
                index = catalog.index_for(raw["table"], columns[0])
            else:
                index = catalog.composite_index_for(raw["table"], columns)
            state = VerificationState(
                index=index,
                samples=int(raw["samples"]),
                predicted_gain=float(raw["predicted_gain"]),
                predicted_without=float(raw["predicted_without"]),
                observed_gain=float(raw["observed_gain"]),
                observed_without=float(raw["observed_without"]),
                verdict=Verdict(raw["verdict"]),
                ratio=None if raw.get("ratio") is None else float(raw["ratio"]),
            )
            self._states[_key(index)] = state
