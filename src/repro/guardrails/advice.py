"""DBA advice: pin/ban/prefer directives over index candidates.

Production tuners keep the DBA in the loop (Schnaitter's semi-automatic
tuning does exactly this): an operator can *pin* an index COLT must keep
materialized, *ban* an index it must never build, or *prefer* one with a
soft weight that biases -- but does not force -- the knapsack.  The
directives become a :class:`~repro.core.knapsack.SelectionConstraints`
once resolved against a concrete catalog.

Advice file format (one directive per line, ``#`` comments)::

    # production advice
    pin lineitem_1.l_shipdate
    ban orders_1.o_orderdate
    prefer part_1.p_size 1.5
    pin lineitem_1.l_shipdate+l_orderkey   # composite: columns joined by +
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Dict, Iterable, List, Tuple, Union

from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef

#: Directive verbs accepted in advice files.
VERBS = ("pin", "ban", "prefer")


class AdviceError(ValueError):
    """Raised for malformed or contradictory advice."""


@dataclasses.dataclass(frozen=True)
class AdviceDirective:
    """One parsed directive.

    Attributes:
        verb: ``"pin"``, ``"ban"`` or ``"prefer"``.
        table: Target table name.
        columns: Target key columns, in index order.
        weight: Value multiplier (prefer only; 1.0 otherwise).
    """

    verb: str
    table: str
    columns: Tuple[str, ...]
    weight: float = 1.0

    @property
    def target(self) -> str:
        """The ``table.col1+col2`` spelling of the directive's index."""
        return f"{self.table}.{'+'.join(self.columns)}"

    def to_line(self) -> str:
        """Render back to the advice-file line format."""
        if self.verb == "prefer":
            return f"prefer {self.target} {self.weight:g}"
        return f"{self.verb} {self.target}"


def parse_directive(line: str) -> AdviceDirective:
    """Parse one advice line (comments/whitespace already stripped)."""
    parts = line.split()
    if not parts or parts[0] not in VERBS:
        raise AdviceError(
            f"advice line must start with one of {VERBS}: {line!r}"
        )
    verb = parts[0]
    expected = 3 if verb == "prefer" else 2
    if len(parts) != expected:
        raise AdviceError(f"malformed {verb} directive: {line!r}")
    table, sep, column_text = parts[1].partition(".")
    if not sep or not table or not column_text:
        raise AdviceError(
            f"directive target must be TABLE.COLUMN[+COLUMN...]: {line!r}"
        )
    columns = tuple(c for c in column_text.split("+") if c)
    if not columns:
        raise AdviceError(f"directive names no columns: {line!r}")
    weight = 1.0
    if verb == "prefer":
        try:
            weight = float(parts[2])
        except ValueError as exc:
            raise AdviceError(f"bad preference weight in {line!r}") from exc
        if weight <= 0.0:
            raise AdviceError(f"preference weight must be positive: {line!r}")
    return AdviceDirective(verb=verb, table=table, columns=columns, weight=weight)


class AdviceBook:
    """The resolved set of directives a guardrail manager enforces.

    Duplicate directives for the same index collapse (last one wins per
    verb); a pin and a ban for the same index is a contradiction and
    raises immediately -- better to fail at load time than to hand the
    knapsack an unsatisfiable constraint.
    """

    def __init__(self, directives: Iterable[AdviceDirective] = ()) -> None:
        self._pins: Dict[Tuple[str, Tuple[str, ...]], AdviceDirective] = {}
        self._bans: Dict[Tuple[str, Tuple[str, ...]], AdviceDirective] = {}
        self._prefers: Dict[Tuple[str, Tuple[str, ...]], AdviceDirective] = {}
        for directive in directives:
            self.add(directive)

    def add(self, directive: AdviceDirective) -> None:
        """Record one directive, rejecting pin/ban contradictions."""
        key = (directive.table, directive.columns)
        if directive.verb == "pin":
            if key in self._bans:
                raise AdviceError(f"{directive.target} is both pinned and banned")
            self._pins[key] = directive
        elif directive.verb == "ban":
            if key in self._pins:
                raise AdviceError(f"{directive.target} is both pinned and banned")
            self._bans[key] = directive
        else:
            self._prefers[key] = directive

    def __len__(self) -> int:
        return len(self._pins) + len(self._bans) + len(self._prefers)

    @property
    def directives(self) -> List[AdviceDirective]:
        """Every directive, pins then bans then prefers, name-sorted."""
        out: List[AdviceDirective] = []
        for book in (self._pins, self._bans, self._prefers):
            out.extend(book[key] for key in sorted(book))
        return out

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "AdviceBook":
        """Parse a whole advice file's text."""
        book = cls()
        for raw in text.splitlines():
            line = raw.split("#", 1)[0].strip()
            if line:
                book.add(parse_directive(line))
        return book

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "AdviceBook":
        """Load and parse an advice file."""
        return cls.parse(pathlib.Path(path).read_text())

    def to_text(self) -> str:
        """Render the book back to the advice-file format."""
        return "\n".join(d.to_line() for d in self.directives) + "\n"

    # ------------------------------------------------------------------
    def resolve(
        self, catalog: Catalog
    ) -> Tuple[List[IndexDef], List[IndexDef], List[Tuple[IndexDef, float]]]:
        """Resolve directives to index definitions against a catalog.

        Returns:
            (pinned, banned, preferred) with preferred carrying
            ``(index, weight)`` pairs.

        Raises:
            AdviceError: when a directive names an unknown table or
                column -- stale advice silently ignored would be worse
                than a loud failure.
        """
        pinned = [self._resolve_one(catalog, d) for d in self._pins.values()]
        banned = [self._resolve_one(catalog, d) for d in self._bans.values()]
        preferred = [
            (self._resolve_one(catalog, d), d.weight)
            for d in self._prefers.values()
        ]
        return pinned, banned, preferred

    @staticmethod
    def _resolve_one(catalog: Catalog, directive: AdviceDirective) -> IndexDef:
        if not catalog.has_table(directive.table):
            raise AdviceError(
                f"advice names unknown table {directive.table!r}"
            )
        table = catalog.table(directive.table)
        for column in directive.columns:
            if not table.has_column(column):
                raise AdviceError(
                    f"advice names unknown column "
                    f"{directive.table}.{column}"
                )
        if len(directive.columns) == 1:
            return catalog.index_for(directive.table, directive.columns[0])
        return catalog.composite_index_for(directive.table, directive.columns)

    # ------------------------------------------------------------------
    def to_snapshot(self) -> List[str]:
        """JSON-compatible serialization (one line per directive)."""
        return [d.to_line() for d in self.directives]

    @classmethod
    def from_snapshot(cls, lines: Iterable[str]) -> "AdviceBook":
        """Rebuild a book from :meth:`to_snapshot` output."""
        book = cls()
        for line in lines:
            book.add(parse_directive(line))
        return book
