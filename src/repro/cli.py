"""Command-line interface.

Exposes the reproduction's experiments and a few interactive utilities::

    python -m repro table1                 # Table 1 characteristics
    python -m repro fig3 [--seed N]        # stable-workload experiment
    python -m repro fig4                   # shifting-workload experiment
    python -m repro fig5                   # overhead self-regulation
    python -m repro fig6 [--bursts 20,50]  # noise resilience sweep
    python -m repro explain "select ..."   # optimize a query against the
                                           #   paper catalog and show the plan
    python -m repro check-snapshot FILE    # validate a saved tuner snapshot
                                           #   (COLT or bandit, auto-detected)
    python -m repro run [--engine E]       # run a tuning engine (colt,
                                           #   bandit, offline, continuous)
                                           #   and report its dashboard
    python -m repro metrics                # emit a Prometheus/JSON metrics
                                           #   snapshot (live or --from FILE)
    python -m repro fleet-run              # replicated tuning fleet behind a
                                           #   workload-aware query router
    python -m repro fleet-status DIR       # inspect a saved fleet snapshot
                                           #   (+ quarantine/rollout, --json)
    python -m repro audit                  # guardrail audit: predicted vs
                                           #   observed index benefit
    python -m repro demo                   # 60-second COLT walkthrough

Every experiment prints the same series the corresponding figure of the
paper charts (plus a small ASCII rendering where it helps).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.bench.figures import (
    DEFAULT_BUDGET_PAGES,
    figure3_stable,
    figure4_shifting,
    figure5_overhead,
    figure6_noise,
    table1_dataset,
)
from repro.backend.base import BackendError
from repro.persist import SnapshotError
from repro.sql.binder import BindError
from repro.sql.lexer import LexError
from repro.sql.parser import ParseError

# Distinct exit codes so scripts can react to the failure class without
# scraping stderr.  1 stays the generic error code.
EXIT_ERROR = 1
EXIT_PARSE = 2
EXIT_BIND = 3
EXIT_SNAPSHOT = 4

#: Engines selectable via ``--engine``.  Every command carrying the flag
#: accepts the same four names; combinations an engine cannot serve
#: (e.g. ``timeline --engine offline``) fail with a clear error.
ENGINE_CHOICES = ("colt", "bandit", "offline", "continuous")


def _add_engine_flag(parser: argparse.ArgumentParser, support: str) -> None:
    parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default="colt",
        help=f"tuning engine ({support}; see the README engine table)",
    )


def _require_epoch_engine(command: str, engine: str) -> None:
    """Commands driving the on-line epoch loop accept colt/bandit only."""
    if engine not in ("colt", "bandit"):
        raise ValueError(
            f"{command} drives an on-line epoch-loop tuner; "
            f"--engine {engine} is only available on 'run' "
            "(use colt or bandit here)"
        )


def _check_gain_cache(engine: str, gain_cache: str) -> None:
    if gain_cache == "on" and engine != "colt":
        raise ValueError(
            "--gain-cache on requires --engine colt: only COLT caches "
            "what-if gains (the bandit learns from observed rewards)"
        )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COLT (ICDE 2007) reproduction: experiments and utilities",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1 (data set characteristics)")

    for name, text in (
        ("fig3", "stable workload: COLT vs OFFLINE"),
        ("fig4", "shifting workload: COLT vs OFFLINE"),
        ("fig5", "what-if overhead self-regulation"),
    ):
        p = sub.add_parser(name, help=text)
        p.add_argument("--seed", type=int, default=0, help="workload RNG seed")
        p.add_argument(
            "--budget",
            type=float,
            default=DEFAULT_BUDGET_PAGES,
            help="storage budget in pages",
        )

    p6 = sub.add_parser("fig6", help="noise resilience sweep")
    p6.add_argument("--seed", type=int, default=0)
    p6.add_argument(
        "--budget", type=float, default=DEFAULT_BUDGET_PAGES
    )
    p6.add_argument(
        "--bursts",
        type=str,
        default="20,30,40,50,60,70,80,90",
        help="comma-separated burst lengths",
    )

    pe = sub.add_parser(
        "explain", help="optimize a query against the paper catalog"
    )
    pe.add_argument("sql", help="a SELECT statement over the TPC-H schema")
    pe.add_argument(
        "--index",
        action="append",
        default=[],
        metavar="TABLE.COLUMN",
        help="hypothetical index to make available (repeatable)",
    )

    pa = sub.add_parser(
        "advise", help="one-shot index recommendation for a list of queries"
    )
    pa.add_argument(
        "sql",
        nargs="+",
        help="one or more SELECT statements over the TPC-H schema",
    )
    pa.add_argument(
        "--budget", type=float, default=DEFAULT_BUDGET_PAGES, help="pages"
    )

    pt = sub.add_parser(
        "timeline", help="per-epoch timeline of a tuning run (watch it tune)"
    )
    pt.add_argument(
        "--workload",
        choices=("stable", "shifting"),
        default="shifting",
        help="which paper workload to trace",
    )
    pt.add_argument("--seed", type=int, default=0)
    pt.add_argument("--budget", type=float, default=DEFAULT_BUDGET_PAGES)
    pt.add_argument(
        "--queries", type=int, default=400, help="workload length (stable only)"
    )
    pt.add_argument(
        "--gain-cache",
        choices=("on", "off"),
        default="off",
        help="cross-query what-if gain cache (COLT only; see "
        "docs/PERFORMANCE.md)",
    )
    _add_engine_flag(pt, "epoch-loop engines only (colt, bandit)")

    ps = sub.add_parser(
        "check-snapshot",
        help="validate a tuner snapshot file against the paper catalog",
    )
    ps.add_argument("path", help="path to a snapshot written by save_json")
    ps.add_argument(
        "--engine",
        choices=("colt", "bandit"),
        default=None,
        help="assert the snapshot was written by this engine "
        "(mismatch fails with the snapshot exit code)",
    )

    pr = sub.add_parser(
        "run",
        help="run a tuning engine over a paper workload and report the "
        "overhead dashboard",
    )
    pr.add_argument(
        "--workload",
        choices=("stable", "shifting"),
        default="stable",
        help="which paper workload to run",
    )
    pr.add_argument(
        "--queries", type=int, default=200, help="workload length (stable only)"
    )
    pr.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    pr.add_argument(
        "--budget",
        type=float,
        default=DEFAULT_BUDGET_PAGES,
        help="storage budget in pages",
    )
    pr.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a metrics snapshot (.prom/.txt: Prometheus text; "
        "otherwise JSON)",
    )
    pr.add_argument(
        "--gain-cache",
        choices=("on", "off"),
        default="off",
        help="cross-query what-if gain cache (COLT only; see "
        "docs/PERFORMANCE.md)",
    )
    _add_engine_flag(pr, "all four engines")
    pr.add_argument(
        "--backend",
        choices=("local", "trace", "hypopg"),
        default="local",
        help="DBMS backend answering what-if probes (colt/bandit only; "
        "see docs/BACKENDS.md)",
    )
    pr.add_argument(
        "--record-trace",
        default=None,
        metavar="PATH",
        help="record every pricing request to a cost-trace file "
        "(requires --backend local)",
    )
    pr.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="cost-trace file to replay (requires --backend trace)",
    )
    pr.add_argument(
        "--dsn",
        default=None,
        metavar="DSN",
        help="PostgreSQL connection string (requires --backend hypopg)",
    )

    pm = sub.add_parser(
        "metrics",
        help="emit a metrics snapshot (small live fleet run, or a saved file)",
    )
    pm.add_argument(
        "--format",
        choices=("prom", "json", "text"),
        default="prom",
        help="prom: Prometheus text; json: snapshot document; "
        "text: overhead dashboard table",
    )
    pm.add_argument(
        "--from",
        dest="from_file",
        default=None,
        metavar="FILE",
        help="render a saved JSON snapshot instead of running live",
    )
    pm.add_argument("--seed", type=int, default=0, help="live-run RNG seed")

    pf = sub.add_parser(
        "fleet-run",
        help="run a replicated tuning fleet over a multi-client shifting workload",
    )
    pf.add_argument(
        "--replicas", type=int, default=3, help="fleet size (and client count)"
    )
    pf.add_argument(
        "--policy",
        choices=("round-robin", "affinity", "client", "cost"),
        default="affinity",
        help="routing policy",
    )
    pf.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    pf.add_argument(
        "--budget",
        type=float,
        default=DEFAULT_BUDGET_PAGES,
        help="per-replica storage budget in pages",
    )
    pf.add_argument(
        "--phase-length", type=int, default=100, help="queries per client phase"
    )
    pf.add_argument(
        "--transition", type=int, default=20, help="phase transition length"
    )
    pf.add_argument(
        "--fleet-epoch",
        type=int,
        default=30,
        help="queries between fleet reorganizations",
    )
    pf.add_argument(
        "--snapshot-dir",
        default=None,
        help="directory to save the fleet snapshot into after the run",
    )
    pf.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the fleet's merged metrics snapshot "
        "(.prom/.txt: Prometheus text; otherwise JSON)",
    )
    pf.add_argument(
        "--gain-cache",
        choices=("on", "off"),
        default="off",
        help="per-replica cross-query what-if gain cache",
    )
    pf.add_argument(
        "--guardrails",
        choices=("on", "off"),
        default="off",
        help="per-replica verification/quarantine plus staged canary "
        "rollout of new indexes (see docs/GUARDRAILS.md)",
    )
    pf.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="run the fleet's replicas in N worker processes (one per "
        "replica, overriding --replicas; bit-identical decisions, see "
        "docs/FLEET.md); 0 keeps everything in-process",
    )
    pf.add_argument(
        "--cotune",
        choices=("on", "off"),
        default="off",
        help="divergent-design co-tuning: partition the stream by "
        "relevant-index signature, specialize replicas, refine the "
        "routing map with budgeted what-if probes (see docs/COTUNE.md)",
    )
    _add_engine_flag(pf, "epoch-loop engines only (colt, bandit)")

    pp = sub.add_parser(
        "replay",
        help="throughput benchmark: replay a timed query stream and report "
        "wall-clock QPS plus latency percentiles (docs/PERFORMANCE.md)",
    )
    pp.add_argument(
        "--events",
        type=int,
        default=1_000_000,
        help="stream length (the base workload is cycled out to this many "
        "timestamped arrivals)",
    )
    pp.add_argument(
        "--mode",
        choices=("serial", "batched", "workers", "all"),
        default="all",
        help="which serving paths to measure",
    )
    pp.add_argument(
        "--batch-size",
        type=int,
        default=64,
        help="hot-path chunk size for the batched mode",
    )
    pp.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker process count (= fleet size) for the workers mode",
    )
    pp.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    pp.add_argument(
        "--budget",
        type=float,
        default=DEFAULT_BUDGET_PAGES,
        help="storage budget in pages (per replica in workers mode)",
    )
    pp.add_argument(
        "--phase-length", type=int, default=100, help="queries per client phase"
    )
    pp.add_argument(
        "--transition", type=int, default=20, help="phase transition length"
    )
    pp.add_argument(
        "--fleet-epoch",
        type=int,
        default=200,
        help="queries between fleet reorganizations (workers mode)",
    )
    pp.add_argument(
        "--arrival-rate",
        type=float,
        default=2000.0,
        help="mean arrivals/second stamped on the generated stream",
    )
    pp.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the throughput report (BENCH_throughput.json layout)",
    )

    pg = sub.add_parser(
        "fleet-status",
        help="inspect a fleet snapshot directory written by fleet-run",
    )
    pg.add_argument("dir", help="fleet snapshot directory")
    pg.add_argument(
        "--json",
        action="store_true",
        help="emit the status document as JSON instead of a table",
    )

    pd = sub.add_parser(
        "audit",
        help="guardrail audit: predicted vs observed benefit per index",
    )
    pd.add_argument(
        "--scenario",
        choices=("misleading", "clean"),
        default="misleading",
        help="misleading: statistics over-promise one index; "
        "clean: truthful statistics (control arm)",
    )
    pd.add_argument(
        "--guardrails",
        choices=("on", "off"),
        default="on",
        help="verification + quarantine on the audited run",
    )
    pd.add_argument(
        "--queries", type=int, default=360, help="workload length"
    )
    pd.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    pd.add_argument(
        "--advice",
        default=None,
        metavar="FILE",
        help="DBA advice file (pin/ban/prefer lines; requires guardrails on)",
    )
    pd.add_argument(
        "--compare",
        action="store_true",
        help="also run the opposite guardrail arm and report the observed "
        "regret saved (exit 1 if guardrails do not win on the misleading "
        "scenario)",
    )
    pd.add_argument(
        "--json",
        dest="json_out",
        default=None,
        metavar="PATH",
        help="write the audit document as JSON",
    )

    sub.add_parser("demo", help="a 60-second COLT walkthrough")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "table1":
            print(table1_dataset().to_text())
        elif args.command == "fig3":
            _run_fig3(args)
        elif args.command == "fig4":
            _run_fig4(args)
        elif args.command == "fig5":
            print(figure5_overhead(budget=args.budget, seed=args.seed).to_text())
        elif args.command == "fig6":
            bursts = tuple(int(b) for b in args.bursts.split(","))
            print(
                figure6_noise(
                    burst_lengths=bursts, budget=args.budget, seed=args.seed
                ).to_text()
            )
        elif args.command == "explain":
            _run_explain(args)
        elif args.command == "advise":
            _run_advise(args)
        elif args.command == "timeline":
            _run_timeline(args)
        elif args.command == "check-snapshot":
            _run_check_snapshot(args)
        elif args.command == "run":
            _run_run(args)
        elif args.command == "metrics":
            _run_metrics(args)
        elif args.command == "fleet-run":
            _run_fleet(args)
        elif args.command == "replay":
            _run_replay(args)
        elif args.command == "fleet-status":
            _run_fleet_status(args)
        elif args.command == "audit":
            _run_audit(args)
        elif args.command == "demo":
            _run_demo()
    except (LexError, ParseError) as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return EXIT_PARSE
    except BindError as exc:
        print(f"bind error: {exc}", file=sys.stderr)
        return EXIT_BIND
    except SnapshotError as exc:
        print(f"snapshot error: {exc}", file=sys.stderr)
        return EXIT_SNAPSHOT
    except BackendError as exc:
        print(f"backend error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except (ValueError, KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    return 0


# ----------------------------------------------------------------------
def _run_fig3(args) -> None:
    result = figure3_stable(budget=args.budget, seed=args.seed)
    print(result.to_text())
    print()
    print(_ascii_bars("COLT   ", result.colt_bars))
    print(_ascii_bars("OFFLINE", result.offline_bars))
    print(
        f"\ndeviation after query 100: {-result.reduction_percent(100):.1f}% "
        "(paper: ~1%)"
    )


def _run_fig4(args) -> None:
    result = figure4_shifting(budget=args.budget, seed=args.seed)
    print(result.to_text())
    print()
    print(_ascii_bars("COLT   ", result.colt_bars))
    print(_ascii_bars("OFFLINE", result.offline_bars))
    print(
        f"\noverall reduction: {result.reduction_percent():.1f}% (paper: 33%); "
        f"phase 2: {result.reduction_percent(350, 650):.1f}% (paper: 49%)"
    )


def _run_explain(args) -> None:
    from repro.optimizer import Optimizer, explain
    from repro.sql import parse_query
    from repro.sql.binder import bind_query
    from repro.workload import build_catalog

    catalog = build_catalog()
    query = bind_query(parse_query(args.sql), catalog)
    config = set()
    for spec in args.index:
        table, _, column = spec.partition(".")
        if not table or not column:
            raise ValueError(f"--index expects TABLE.COLUMN, got {spec!r}")
        config.add(catalog.index_for(table, column))
    result = Optimizer(catalog).optimize(query, config=frozenset(config))
    print(explain(result.plan))
    if config:
        used = {ix.name for ix in result.plan.indexes_used()}
        offered = {ix.name for ix in config}
        print(f"\noffered indexes: {', '.join(sorted(offered))}")
        print(f"used indexes:    {', '.join(sorted(used)) or '(none)'}")


def _run_advise(args) -> None:
    from repro.advisor import advise
    from repro.workload import build_catalog

    report = advise(build_catalog(), args.sql, budget_pages=args.budget)
    print(report.to_text())


def _run_timeline(args) -> None:
    from repro.bench.tracing import trace_run
    from repro.core.config import ColtConfig
    from repro.workload import build_catalog, shifting_workload, stable_workload
    from repro.workload.experiments import phase_distributions, stable_distribution

    _require_epoch_engine("timeline", args.engine)
    _check_gain_cache(args.engine, args.gain_cache)
    catalog = build_catalog()
    if args.workload == "stable":
        workload = stable_workload(
            stable_distribution(), args.queries, catalog, seed=args.seed
        )
    else:
        workload = shifting_workload(
            phase_distributions(),
            catalog,
            phase_length=150,
            transition=30,
            seed=args.seed,
        )
    if args.engine == "bandit":
        _bandit_timeline(args, workload)
        return
    trace = trace_run(
        build_catalog(),
        workload.queries,
        ColtConfig(
            storage_budget_pages=args.budget,
            seed=args.seed,
            gain_cache=args.gain_cache == "on",
        ),
    )
    print(f"workload: {workload.description}\n")
    print(trace.render_timeline())


def _bandit_timeline(args, workload) -> None:
    """Per-round timeline of a bandit run (``trace_run`` is COLT-only)."""
    from repro.bandit import BanditConfig, BanditTuner
    from repro.workload import build_catalog

    tuner = BanditTuner(
        build_catalog(),
        BanditConfig(storage_budget_pages=args.budget, seed=args.seed),
    )
    print(f"workload: {workload.description} (engine: bandit)\n")
    print(f"{'round':>5} {'exec cost':>12} {'probes':>6} {'|M|':>4}  changes")
    epoch_cost = 0.0
    probes = 0
    epoch = 0
    for outcome in tuner.run(workload.queries):
        epoch_cost += outcome.execution_cost
        probes += outcome.whatif_calls
        if outcome.epoch_ended and outcome.reorganization is not None:
            reorg = outcome.reorganization
            changes = [f"+{ix.name}" for ix in reorg.materialize]
            changes += [f"-{ix.name}" for ix in reorg.drop]
            print(
                f"{epoch:>5} {epoch_cost:>12,.0f} {probes:>6} "
                f"{len(tuner.materialized_set):>4}  {' '.join(changes) or '-'}"
            )
            epoch_cost = 0.0
            probes = 0
            epoch += 1
    final = ", ".join(ix.name for ix in tuner.materialized_set) or "(none)"
    print(f"\nfinal materialized: {final}")


def _run_check_snapshot(args) -> None:
    from repro.persist import load_json, restore_any
    from repro.workload import build_catalog

    snapshot = load_json(args.path)
    tuner = restore_any(
        build_catalog(), snapshot, engine=getattr(args, "engine", None)
    )
    engine = snapshot.get("engine", "colt")
    print(f"{args.path}: OK (version {snapshot['version']}, engine {engine})")
    print(f"  materialized: {len(tuner.materialized_set)} indexes")
    print(f"  hot:          {len(tuner.hot_set)} indexes")
    print(f"  what-if budget: {tuner.profiler.whatif_budget}")


def _run_run(args) -> None:
    from repro.obs.export import write_metrics
    from repro.workload import build_catalog, shifting_workload, stable_workload
    from repro.workload.experiments import phase_distributions, stable_distribution

    _check_gain_cache(args.engine, args.gain_cache)
    _check_backend_flags(args)
    catalog = build_catalog()
    if args.workload == "stable":
        workload = stable_workload(
            stable_distribution(), args.queries, catalog, seed=args.seed
        )
    else:
        workload = shifting_workload(
            phase_distributions(),
            catalog,
            phase_length=150,
            transition=30,
            seed=args.seed,
        )
    if args.engine == "offline":
        _run_offline(args, workload)
        return
    if args.engine == "continuous":
        _run_continuous(args, workload)
        return
    tuner = _build_engine_tuner(args)
    outcomes = tuner.run(workload.queries)
    print(f"workload: {workload.description}")
    print(f"engine:   {args.engine}")
    print(
        f"queries:  {len(outcomes)}; epochs: {len(tuner.dashboard.records)}; "
        f"materialized: {len(tuner.materialized_set)}"
    )
    print(f"total cost: {sum(o.total_cost for o in outcomes):,.0f}\n")
    if args.engine == "bandit":
        print("observation overhead dashboard (requested / granted / spent):")
    else:
        print("what-if overhead dashboard (requested / granted / spent):")
    print(tuner.dashboard.render())
    recorder = getattr(tuner.backend, "recorder", None)
    if recorder is not None and getattr(args, "record_trace", None):
        recorder.trace.meta.update(
            workload=args.workload, seed=args.seed, engine=args.engine
        )
        recorder.trace.save(args.record_trace)
        print(
            f"\ncost trace recorded: {args.record_trace} "
            f"({len(recorder.trace)} entries)"
        )
    if args.metrics_out:
        fmt = write_metrics(args.metrics_out, tuner.metrics_snapshot())
        print(f"\nmetrics snapshot written: {args.metrics_out} ({fmt})")


def _check_backend_flags(args) -> None:
    """Reject inconsistent ``--backend``/``--trace``/``--dsn`` combos."""
    backend = getattr(args, "backend", "local")
    if backend != "local" and args.engine not in ("colt", "bandit"):
        raise ValueError(
            f"--backend {backend} requires an on-line engine "
            "(colt or bandit); baselines always price locally"
        )
    if getattr(args, "record_trace", None) and backend != "local":
        raise ValueError("--record-trace requires --backend local")
    if getattr(args, "trace", None) and backend != "trace":
        raise ValueError("--trace is only meaningful with --backend trace")
    if backend == "trace" and not getattr(args, "trace", None):
        raise ValueError("--backend trace requires --trace PATH")
    if getattr(args, "dsn", None) and backend != "hypopg":
        raise ValueError("--dsn is only meaningful with --backend hypopg")


def _build_backend(args, catalog):
    """The DBMS backend selected by ``--backend``, over ``catalog``."""
    backend = getattr(args, "backend", "local")
    if backend == "local":
        recorder = None
        if getattr(args, "record_trace", None):
            from repro.backend.trace import CostTraceRecorder

            recorder = CostTraceRecorder()
        from repro.backend.local import LocalBackend

        return LocalBackend(catalog, recorder=recorder)
    if backend == "trace":
        from repro.backend.trace import CostTrace, TraceBackend

        return TraceBackend(catalog, CostTrace.load(args.trace))
    from repro.backend.hypopg import PostgresHypoBackend

    return PostgresHypoBackend(dsn=getattr(args, "dsn", None), catalog=catalog)


def _build_engine_tuner(args):
    """A colt or bandit tuner over the paper catalog, from CLI args."""
    from repro.workload import build_catalog

    catalog = build_catalog()
    backend = _build_backend(args, catalog)
    if args.engine == "bandit":
        from repro.bandit import BanditConfig, BanditTuner

        return BanditTuner(
            catalog,
            BanditConfig(storage_budget_pages=args.budget, seed=args.seed),
            backend=backend,
        )
    from repro.core.colt import ColtTuner
    from repro.core.config import ColtConfig

    return ColtTuner(
        catalog,
        ColtConfig(
            storage_budget_pages=args.budget,
            seed=args.seed,
            gain_cache=args.gain_cache == "on",
        ),
        backend=backend,
    )


def _run_offline(args, workload) -> None:
    """The OFFLINE baseline under ``run``: exact selection, free tuning."""
    if args.metrics_out:
        raise ValueError(
            "--metrics-out requires an on-line engine (colt or bandit); "
            "the offline baseline emits no metrics"
        )
    from repro.baselines.offline import OfflineTuner
    from repro.workload import build_catalog

    result = OfflineTuner(build_catalog()).tune(
        workload.queries, budget_pages=args.budget
    )
    reduction = 1.0 - result.total_cost / max(result.baseline_cost, 1e-9)
    print(f"workload: {workload.description}")
    print("engine:   offline (exact baseline; selection happens for free)")
    print(f"configurations examined: {result.configurations_examined}")
    print(f"baseline cost: {result.baseline_cost:,.0f}")
    print(f"tuned cost:    {result.total_cost:,.0f} ({reduction:.1%} saved)")
    chosen = ", ".join(ix.name for ix in result.indexes) or "(none)"
    print(f"chosen indexes: {chosen}")


def _run_continuous(args, workload) -> None:
    """The QUIET-style continuous baseline under ``run``."""
    if args.metrics_out:
        raise ValueError(
            "--metrics-out requires an on-line engine (colt or bandit); "
            "the continuous baseline emits no metrics"
        )
    from repro.baselines.continuous import ContinuousConfig, ContinuousTuner
    from repro.workload import build_catalog

    tuner = ContinuousTuner(
        build_catalog(), ContinuousConfig(storage_budget_pages=args.budget)
    )
    outcomes = tuner.run(workload.queries)
    print(f"workload: {workload.description}")
    print("engine:   continuous (QUIET-style, unregulated what-if)")
    print(
        f"queries:  {len(outcomes)}; "
        f"materialized: {len(tuner.materialized_set)}"
    )
    print(f"total cost: {sum(o.total_cost for o in outcomes):,.0f}")
    print(f"what-if calls: {sum(o.whatif_calls for o in outcomes)}")


def _live_metrics_snapshot(seed: int):
    """A small live fleet run exercising every stable metric family."""
    from repro.core.config import ColtConfig
    from repro.fleet import FleetCoordinator
    from repro.workload import build_catalog, multi_client_workload, shifting_workload
    from repro.workload.experiments import phase_distributions

    catalog = build_catalog()
    phases = phase_distributions()
    clients = [
        shifting_workload(
            [phases[i % len(phases)], phases[(i + 1) % len(phases)]],
            catalog,
            phase_length=40,
            transition=10,
            seed=seed + i,
        )
        for i in range(2)
    ]
    merged = multi_client_workload(clients, seed=seed + 7)
    fleet = FleetCoordinator(
        build_catalog,
        n_replicas=2,
        config=ColtConfig(storage_budget_pages=DEFAULT_BUDGET_PAGES, seed=seed),
        policy="cost",
        fleet_epoch_length=25,
    )
    fleet.run(merged)
    return fleet.metrics_snapshot()


def _run_metrics(args) -> None:
    from repro.obs.dashboard import render_overhead_rows
    from repro.obs.export import load_snapshot, render_snapshot

    if args.from_file:
        snapshot = load_snapshot(args.from_file)
    else:
        snapshot = _live_metrics_snapshot(args.seed)
    if args.format == "text":
        print(render_overhead_rows(snapshot.get("overhead", [])))
    else:
        sys.stdout.write(render_snapshot(snapshot, args.format))


def _run_fleet(args) -> None:
    from repro.core.config import ColtConfig
    from repro.fleet import FleetCoordinator, save_fleet
    from repro.guardrails import GuardrailConfig
    from repro.workload import build_catalog, multi_client_workload, shifting_workload
    from repro.workload.experiments import phase_distributions

    _require_epoch_engine("fleet-run", args.engine)
    _check_gain_cache(args.engine, args.gain_cache)
    if args.workers and args.guardrails == "on":
        raise ValueError(
            "--workers does not support --guardrails on "
            "(see repro.fleet.workers)"
        )
    n_replicas = args.workers if args.workers else args.replicas
    catalog = build_catalog()
    phases = phase_distributions()
    # One client per replica, each shifting through its own pair of
    # consecutive phases -- the §6.2 multi-user setting with enough
    # cross-client divergence for routing to exploit.
    clients = [
        shifting_workload(
            [phases[i % len(phases)], phases[(i + 1) % len(phases)]],
            catalog,
            phase_length=args.phase_length,
            transition=args.transition,
            seed=args.seed + i,
        )
        for i in range(n_replicas)
    ]
    merged = multi_client_workload(clients, seed=args.seed + 7)
    fleet = FleetCoordinator(
        build_catalog,
        n_replicas=n_replicas,
        config=ColtConfig(
            storage_budget_pages=args.budget,
            gain_cache=args.gain_cache == "on",
        ),
        policy=args.policy,
        fleet_epoch_length=args.fleet_epoch,
        guardrails=GuardrailConfig() if args.guardrails == "on" else None,
        engine=args.engine,
        workers=args.workers,
        cotune=args.cotune == "on",
    )
    try:
        run = fleet.run(merged)
        _print_fleet_report(args, fleet, run, merged)
    finally:
        if args.workers:
            fleet.close()


def _print_fleet_report(args, fleet, run, merged) -> None:
    from repro.fleet import save_fleet

    print(f"workload: {merged.description}")
    workers_note = (
        f", {args.workers} worker processes" if getattr(args, "workers", 0) else ""
    )
    print(
        f"policy:   {run.policy} ({len(fleet.replicas)} replicas, "
        f"engine {fleet.engine}{workers_note})\n"
    )
    print(
        f"{'replica':>8} {'health':>9} {'queries':>8} {'|M|':>4} "
        f"{'quar':>4} {'exec cost':>14}"
    )
    for replica in fleet.replicas:
        print(
            f"{replica.replica_id:>8} {replica.health.value:>9} "
            f"{replica.stats.queries:>8} {len(replica.materialized_names):>4} "
            f"{len(replica.quarantined_names):>4} "
            f"{replica.stats.execution_cost:>14,.0f}"
        )
    drains = sorted({i for r in run.reorganizations for i in r.drained})
    print(
        f"\nfleet execution cost: {run.execution_cost:>14,.0f}\n"
        f"fleet total cost:     {run.total_cost:>14,.0f}\n"
        f"routing overhead:     {run.routing_overhead:>14,.0f}\n"
        f"config divergence:    {fleet.configuration_divergence():>14.2f}\n"
        f"reorganizations:      {len(run.reorganizations):>14}"
        + (f" (drained: {drains})" if drains else "")
    )
    if fleet.rollout is not None:
        started = sum(
            len(r.rollout.started) for r in run.reorganizations if r.rollout
        )
        promoted = sum(
            len(r.rollout.promoted) for r in run.reorganizations if r.rollout
        )
        rolled_back = sum(
            len(r.rollout.rolled_back)
            for r in run.reorganizations
            if r.rollout
        )
        print(
            f"rollouts:             {started:>14}"
            f" (promoted: {promoted}, rolled back: {rolled_back})"
        )
    if fleet.cotune is not None:
        reports = [r.cotune for r in run.reorganizations if r.cotune]
        probes = sum(r.probes for r in reports)
        probe_cost = sum(r.probe_cost for r in reports)
        last = reports[-1] if reports else None
        print(
            f"co-tuning:            {last.partitions if last else 0:>14}"
            f" partitions over"
            f" {last.signatures if last else 0} signatures"
        )
        print(
            f"  migrations: {fleet.cotune.migrations_total}, "
            f"probes: {probes} (overhead cost {probe_cost:,.0f}), "
            f"converged: {'yes' if fleet.cotune.converged else 'no'}"
        )
        for replica in fleet.replicas:
            labels = fleet.cotune.partition_of(replica.replica_id)
            print(
                f"  replica {replica.replica_id}: "
                f"{', '.join(labels) if labels else '(no partition)'}"
            )
    if args.snapshot_dir:
        path = save_fleet(args.snapshot_dir, fleet)
        print(f"\nfleet snapshot saved: {path}")
    if args.metrics_out:
        from repro.obs.export import write_metrics

        fmt = write_metrics(args.metrics_out, fleet.metrics_snapshot())
        print(f"\nmetrics snapshot written: {args.metrics_out} ({fmt})")


def _run_replay(args) -> None:
    from repro.bench.replay import (
        ReplayStream,
        build_replay_tuner,
        replay_fleet,
        replay_serial,
        write_throughput_report,
    )
    from repro.core.config import ColtConfig
    from repro.fleet import FleetCoordinator
    from repro.workload import (
        build_catalog,
        multi_client_workload,
        shifting_workload,
    )
    from repro.workload.experiments import phase_distributions

    if args.events < 1:
        raise ValueError("--events must be positive")
    if args.workers < 1:
        raise ValueError("--workers must be positive")
    modes = (
        ("serial", "batched", "workers") if args.mode == "all" else (args.mode,)
    )
    config = ColtConfig(storage_budget_pages=args.budget)
    catalog = build_catalog()
    phases = phase_distributions()
    # Same multi-client shifting base workload fleet-run uses, cycled
    # out to --events timestamped arrivals.
    clients = [
        shifting_workload(
            [phases[i % len(phases)], phases[(i + 1) % len(phases)]],
            catalog,
            phase_length=args.phase_length,
            transition=args.transition,
            seed=args.seed + i,
        )
        for i in range(args.workers)
    ]
    merged = multi_client_workload(clients, seed=args.seed + 7)
    stream = ReplayStream.from_workload(
        merged,
        events=args.events,
        seed=args.seed,
        arrival_rate=args.arrival_rate,
    )
    print(
        f"replaying {args.events:,} events "
        f"(base workload: {len(merged.queries)} queries, "
        f"arrival rate {args.arrival_rate:,.0f}/s)\n"
    )

    reports = []
    for mode in modes:
        if mode == "serial":
            tuner = build_replay_tuner(build_catalog(), config)
            report = replay_serial(tuner, stream)
        elif mode == "batched":
            tuner = build_replay_tuner(build_catalog(), config, batched=True)
            report = replay_serial(tuner, stream, batch_size=args.batch_size)
        else:
            fleet = FleetCoordinator(
                build_catalog,
                config=config,
                policy="client",
                fleet_epoch_length=args.fleet_epoch,
                workers=args.workers,
            )
            try:
                report = replay_fleet(fleet, stream, on_error="skip")
            finally:
                fleet.close()
        reports.append(report)
        lat = report.latency
        pct = " ".join(
            f"{name}={lat[name] * 1e6:,.0f}us" if lat[name] is not None else f"{name}=n/a"
            for name in ("p50", "p95", "p99")
        )
        print(f"{report.mode:>8}: {report.qps:>10,.0f} qps   {pct}")

    serial = next((r for r in reports if r.mode == "serial"), None)
    if serial is not None and serial.qps > 0:
        for report in reports:
            if report.mode != "serial":
                print(
                    f"\n{report.mode} speedup vs serial: "
                    f"{report.qps / serial.qps:.2f}x"
                )
    if args.out:
        import os

        try:
            cpu_cores = len(os.sched_getaffinity(0))
        except AttributeError:  # non-linux
            cpu_cores = os.cpu_count() or 1
        path = write_throughput_report(
            args.out,
            reports,
            meta={
                "events": args.events,
                "batch_size": args.batch_size,
                "workers": args.workers,
                "seed": args.seed,
                "base_workload": merged.description,
                # Gates that need real parallelism (workers vs serial)
                # are only meaningful when the measuring host actually
                # had cores to parallelize over; see
                # tools/check_throughput.py.
                "cpu_cores": cpu_cores,
            },
        )
        print(f"\nthroughput report written: {path}")


def _fleet_status_document(directory) -> dict:
    """Machine-readable fleet status: manifest, integrity, guardrails."""
    import pathlib

    from repro.fleet import load_manifest
    from repro.persist import checksum, load_json

    root = pathlib.Path(directory)
    manifest = load_manifest(root)
    replicas = []
    for entry in sorted(manifest["replicas"], key=lambda e: e["replica_id"]):
        try:
            snap = load_json(root / entry["file"])
            state = "OK" if checksum(snap) == entry["checksum"] else "MISMATCH"
        except SnapshotError as exc:
            state = f"CORRUPT ({exc})"
        replicas.append(
            {
                "replica_id": entry["replica_id"],
                "engine": entry.get("engine", "colt"),
                "health": entry["health"],
                "queries": entry["queries"],
                "materialized": entry["materialized"],
                "quarantined": list(entry.get("quarantined", [])),
                "file": entry["file"],
                "integrity": state,
            }
        )
    rollout = manifest.get("rollout")
    rollouts = []
    if rollout:
        for record in rollout.get("records", []):
            rollouts.append(
                {
                    "index": f"{record['table']}.{'+'.join(record['columns'])}",
                    "stage": record["stage"],
                    "canary": record.get("canary_id"),
                    "cooldown_remaining": record.get("cooldown_remaining", 0),
                }
            )
    cotune = manifest.get("cotune")
    partitions = None
    if cotune:
        assignment = {}
        for pairs, replica in cotune.get("assignment", []):
            label = "+".join(f"{t}.{c}" for t, c in sorted(map(tuple, pairs)))
            assignment.setdefault(int(replica), []).append(label)
        partitions = {
            "epochs": cotune.get("epochs", 0),
            "migrations_total": cotune.get("migrations_total", 0),
            "converged": cotune.get("converged", False),
            "probe_budget": cotune.get("probe_budget", 0),
            "assignment": {
                replica: sorted(labels)
                for replica, labels in sorted(assignment.items())
            },
        }
    return {
        "directory": str(root),
        "policy": manifest["policy"],
        "queries_routed": manifest["queries_routed"],
        "replicas": replicas,
        "rollouts": rollouts,
        "cotune": partitions,
    }


def _run_fleet_status(args) -> None:
    import json

    doc = _fleet_status_document(args.dir)
    if args.json:
        print(json.dumps(doc, indent=1))
        return
    print(
        f"{doc['directory']}: fleet of {len(doc['replicas'])} "
        f"(policy {doc['policy']}, "
        f"{doc['queries_routed']} queries routed)"
    )
    print(
        f"{'replica':>8} {'engine':>7} {'health':>9} {'queries':>8} {'|M|':>4} "
        f"{'quarantined':>24}  snapshot"
    )
    for entry in doc["replicas"]:
        quarantined = ",".join(entry["quarantined"]) or "-"
        print(
            f"{entry['replica_id']:>8} {entry['engine']:>7} "
            f"{entry['health']:>9} "
            f"{entry['queries']:>8} {entry['materialized']:>4} "
            f"{quarantined:>24}  {entry['file']}: {entry['integrity']}"
        )
    if doc["rollouts"]:
        print("\nstaged rollouts:")
        for record in doc["rollouts"]:
            extra = ""
            if record["stage"] == "canary":
                extra = f" (canary: replica {record['canary']})"
            elif record["stage"] == "rolled_back":
                extra = f" (cooldown: {record['cooldown_remaining']})"
            print(f"  {record['index']:<28} {record['stage']}{extra}")
    if doc.get("cotune"):
        cotune = doc["cotune"]
        print(
            f"\nco-tuning partitions ({cotune['epochs']} epochs, "
            f"{cotune['migrations_total']} migrations, "
            f"converged: {'yes' if cotune['converged'] else 'no'}):"
        )
        for replica, labels in cotune["assignment"].items():
            print(f"  replica {replica}: {', '.join(labels)}")


def _audit_arm(scenario: str, guardrails: bool, args) -> dict:
    """Run one guardrail arm of the audit scenario; observed-cost regret."""
    from repro.core.colt import ColtTuner
    from repro.core.config import ColtConfig
    from repro.executor.executor import execute
    from repro.executor.instrument import CountingStore
    from repro.guardrails import (
        AdviceBook,
        ExecutionObserver,
        GuardrailConfig,
        GuardrailManager,
    )
    from repro.guardrails.verify import observed_cost
    from repro.workload import build_adversarial_store, misleading_workload

    # "clean" means clean end to end: uniform data AND truthful stats.
    # (Skewed data defeats ANALYZE's uniform-selectivity model even when
    # nobody lies, so it would not exercise the no-false-positive path.)
    mislead = scenario == "misleading"
    store = build_adversarial_store(
        mislead=mislead, skew_fraction=0.85 if mislead else 0.0
    )
    catalog = store.catalog
    workload = misleading_workload(catalog, length=args.queries, seed=args.seed)
    manager = None
    if guardrails:
        advice = AdviceBook.load(args.advice) if args.advice else None
        manager = GuardrailManager(
            config=GuardrailConfig(),
            observer=ExecutionObserver(store),
            advice=advice,
        )
    tuner = ColtTuner(
        catalog,
        ColtConfig(epoch_length=20, storage_budget_pages=200.0),
        store=store,
        guardrails=manager,
    )
    counting = CountingStore(store)
    observed = overhead = 0.0
    for query in workload.queries:
        # Price the plan the tuner is about to choose *before* handing
        # the query over: an epoch boundary inside run() may drop the
        # index (and its physical tree) the plan references.
        plan = tuner.optimizer.optimize(query).plan
        counting.counters.reset()
        execute(plan, counting)
        observed += observed_cost(counting.counters, catalog.params)
        overhead += tuner.run([query])[0].verify_overhead
    return {
        "guardrails": guardrails,
        "observed_cost": observed,
        "verify_overhead": overhead,
        "materialized": sorted(ix.name for ix in tuner.materialized_set),
        "quarantined": sorted(
            entry.index.name for entry in manager.quarantine.entries
        )
        if manager is not None
        else [],
        "rows": manager.audit(tuner.materialized_set)
        if manager is not None
        else [],
    }


def _run_audit(args) -> None:
    import json

    primary_on = args.guardrails == "on"
    arm = _audit_arm(args.scenario, primary_on, args)
    print(
        f"scenario: {args.scenario} ({args.queries} queries, "
        f"seed {args.seed}); guardrails {'on' if primary_on else 'off'}"
    )
    print(f"observed execution cost: {arm['observed_cost']:,.0f}")
    print(f"verification overhead:   {arm['verify_overhead']:,.0f}")
    print(f"materialized: {', '.join(arm['materialized']) or '(none)'}")
    if arm["rows"]:
        print(
            f"\n{'index':<20} {'mat':>3} {'n':>3} {'pred%':>7} "
            f"{'obs%':>7} {'ratio':>7} {'verdict':>9}  quarantine"
        )
        for row in arm["rows"]:
            flags = []
            if row["pinned"]:
                flags.append("pinned")
            if row["banned"]:
                flags.append("banned")
            quarantine = row["quarantine"]
            if quarantine is not None:
                flags.append(
                    f"{quarantine['state']}"
                    f" (cooldown {quarantine['cooldown_remaining']},"
                    f" strikes {quarantine['strikes']})"
                )
            print(
                f"{row['index']:<20} {'Y' if row['materialized'] else '-':>3} "
                f"{row['samples']:>3} {_pct(row['predicted_fraction']):>7} "
                f"{_pct(row['observed_fraction']):>7} "
                f"{_num(row['ratio']):>7} {row['verdict']:>9}  "
                f"{'; '.join(flags) or '-'}"
            )
    document = {
        "scenario": args.scenario,
        "queries": args.queries,
        "seed": args.seed,
        "arms": {("on" if primary_on else "off"): arm},
    }
    if args.compare:
        other = _audit_arm(args.scenario, not primary_on, args)
        document["arms"]["off" if primary_on else "on"] = other
        on_arm = document["arms"]["on"]
        off_arm = document["arms"]["off"]
        savings = 1.0 - on_arm["observed_cost"] / max(
            off_arm["observed_cost"], 1e-9
        )
        document["regret_saved"] = savings
        print(
            f"\nobserved cost, guardrails on vs off: "
            f"{on_arm['observed_cost']:,.0f} vs {off_arm['observed_cost']:,.0f}"
            f" ({savings:+.1%} regret saved)"
        )
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(document, handle, indent=1)
        print(f"\naudit document written: {args.json_out}")
    if args.compare and args.scenario == "misleading":
        if document["regret_saved"] <= 0.0:
            raise ValueError(
                "guardrails did not reduce observed regret on the "
                "misleading scenario"
            )


def _pct(value) -> str:
    return "-" if value is None else f"{value:.1%}"


def _num(value) -> str:
    return "-" if value is None else f"{value:.2f}"


def _run_demo() -> None:
    import random

    from repro.core import ColtConfig, ColtTuner
    from repro.workload import build_catalog
    from repro.workload.experiments import stable_distribution
    from repro.workload.phases import stable_workload

    catalog = build_catalog()
    tuner = ColtTuner(catalog, ColtConfig(storage_budget_pages=9_000.0))
    workload = stable_workload(
        stable_distribution(), 150, catalog, seed=random.Random().randrange(100)
    )
    print("streaming 150 TPC-H-style queries through COLT...\n")
    for i, query in enumerate(workload.queries):
        outcome = tuner.process_query(query)
        if outcome.reorganization and outcome.reorganization.materialize:
            names = ", ".join(
                ix.name for ix in outcome.reorganization.materialize
            )
            print(f"  query {i + 1:3d}: materialized {names}")
    print("\nfinal configuration:")
    for index in tuner.materialized_set:
        print(f"  {index.name}")
    print(f"\ntotal what-if calls: {tuner.whatif.call_count}")


def _ascii_bars(label: str, values: List[float], width: int = 60) -> str:
    """One-line sparkline-style rendering of a bar series."""
    if not values:
        return f"{label} (no data)"
    peak = max(values) or 1.0
    blocks = "▁▂▃▄▅▆▇█"
    chars = [blocks[min(7, int(v / peak * 7.999))] for v in values]
    return f"{label} {''.join(chars)}  (peak {peak:,.0f})"


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
