"""Circuit breaker for what-if profiling (degraded-mode switch).

COLT's two-level profiling has a natural degraded mode: when precise
what-if calls are unavailable the tuner keeps running on crude
``BenefitC`` estimates alone (conservative lower bounds, no
confidence-interval updates).  The breaker is the switch between the
two levels:

* **CLOSED** -- probes flow normally.  ``failure_threshold`` consecutive
  probe failures trip it OPEN.
* **OPEN** -- no probes are issued; the profiler's effective what-if
  budget is 0 and only crude statistics accumulate.  The clock advances
  one tick per arriving query; after ``cooldown_ticks`` the breaker goes
  HALF_OPEN.
* **HALF_OPEN** -- a trickle of probes (``half_open_budget`` per query)
  is allowed through.  ``recovery_threshold`` consecutive successes
  close the breaker; any failure reopens it and restarts the cooldown.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Tuple


class BreakerState(enum.Enum):
    """The three classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with tick-driven cooldown.

    Args:
        failure_threshold: Consecutive failures that trip the breaker.
        cooldown_ticks: Ticks (arriving queries) spent OPEN before
            probing resumes HALF_OPEN.
        recovery_threshold: Consecutive HALF_OPEN successes needed to
            close the breaker again.
        half_open_budget: Probes allowed per query while HALF_OPEN.

    Attributes:
        transitions: ``(from_state, to_state, tick)`` log of every state
            change, for tests and traces.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_ticks: int = 20,
        recovery_threshold: int = 2,
        half_open_budget: int = 1,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if cooldown_ticks < 1:
            raise ValueError("cooldown_ticks must be positive")
        if recovery_threshold < 1:
            raise ValueError("recovery_threshold must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown_ticks = cooldown_ticks
        self.recovery_threshold = recovery_threshold
        self.half_open_budget = half_open_budget
        self.state = BreakerState.CLOSED
        self.transitions: List[Tuple[str, str, int]] = []
        self._listeners: List[Callable[[str, str], None]] = []
        self._consecutive_failures = 0
        self._recovery_successes = 0
        self._cooldown = 0
        self._ticks = 0
        self.total_failures = 0
        self.total_trips = 0

    def add_listener(self, listener: Callable[[str, str], None]) -> None:
        """Register a ``(from_state, to_state)`` transition observer.

        Observers fire synchronously on every state change, after the
        transition log is appended; the metrics layer uses this to count
        transitions without the breaker knowing about registries.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    # ------------------------------------------------------------------
    @property
    def is_closed(self) -> bool:
        """Whether probing is fully enabled."""
        return self.state is BreakerState.CLOSED

    @property
    def is_open(self) -> bool:
        """Whether probing is fully suspended (degraded mode)."""
        return self.state is BreakerState.OPEN

    def allows_probes(self) -> bool:
        """Whether any probe may be issued right now."""
        return self.state is not BreakerState.OPEN

    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Advance the breaker clock by one arriving query."""
        self._ticks += 1
        if self.state is BreakerState.OPEN:
            self._cooldown += 1
            if self._cooldown >= self.cooldown_ticks:
                self._transition(BreakerState.HALF_OPEN)
                self._recovery_successes = 0

    def record_success(self) -> None:
        """Note a successful probe."""
        if self.state is BreakerState.HALF_OPEN:
            self._recovery_successes += 1
            if self._recovery_successes >= self.recovery_threshold:
                self._transition(BreakerState.CLOSED)
                self._consecutive_failures = 0
        elif self.state is BreakerState.CLOSED:
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        """Note a failed probe; may trip the breaker."""
        self.total_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._trip()
        elif self.state is BreakerState.CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip()

    def trip(self) -> None:
        """Force the breaker OPEN on failure evidence from outside the
        probe path.

        ``record_failure`` trips only after ``failure_threshold``
        consecutive probe failures -- right for noisy probes, wrong for
        a failure that is certain, such as the fleet coordinator finding
        a replica's worker process dead: no probe will ever succeed, so
        the breaker opens immediately.  Already-OPEN breakers restart
        their cooldown.
        """
        self.total_failures += 1
        if self.state is BreakerState.OPEN:
            self._cooldown = 0
        else:
            self._trip()

    # ------------------------------------------------------------------
    def _trip(self) -> None:
        self.total_trips += 1
        self._cooldown = 0
        self._consecutive_failures = 0
        self._transition(BreakerState.OPEN)

    def _transition(self, to: BreakerState) -> None:
        origin = self.state.value
        self.transitions.append((origin, to.value, self._ticks))
        self.state = to
        for listener in self._listeners:
            listener(origin, to.value)
