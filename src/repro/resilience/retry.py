"""Retry policy with capped exponential backoff, measured in epochs.

The scheduler retries failed index builds at epoch boundaries -- the
only points where the simulation charges build work -- so delays are
counted in epochs rather than wall-clock seconds.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for failed index builds.

    Attributes:
        base_delay_epochs: Delay before the first retry.
        multiplier: Backoff growth factor per failed attempt.
        max_delay_epochs: Cap on the delay between attempts.
        max_attempts: Total build attempts (including the first) before
            the index is abandoned until the knapsack re-requests it.
    """

    base_delay_epochs: int = 1
    multiplier: float = 2.0
    max_delay_epochs: int = 8
    max_attempts: int = 5

    def __post_init__(self) -> None:
        if self.base_delay_epochs < 1:
            raise ValueError("base_delay_epochs must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay_epochs < self.base_delay_epochs:
            raise ValueError("max_delay_epochs must be >= base_delay_epochs")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be positive")

    def delay_for(self, attempts: int) -> int:
        """Epochs to wait after the ``attempts``-th failed attempt."""
        delay = self.base_delay_epochs * self.multiplier ** max(0, attempts - 1)
        return int(min(self.max_delay_epochs, delay))

    def exhausted(self, attempts: int) -> bool:
        """Whether no further retries should be scheduled."""
        return attempts >= self.max_attempts
