"""Exception taxonomy for the resilience subsystem.

These live in a dependency-free module so that both the core pipeline
(profiler, scheduler, what-if optimizer) and the fault injector can
share them without import cycles: ``repro.core.*`` imports from here,
and ``repro.resilience.faults`` raises these into the core, never the
other way around.
"""

from __future__ import annotations


class WhatIfProbeError(RuntimeError):
    """A single what-if probe failed (call error or timeout).

    Raised by :class:`~repro.optimizer.whatif.WhatIfOptimizer` when a
    probe cannot be answered -- either because the underlying optimizer
    raised, or because a fault injector fired.  The probe's what-if call
    is still counted (and charged): a failed call costs wall-clock time
    in the system this simulates.

    Attributes:
        partial_gains: Gains measured for indexes probed *earlier in the
            same batch*, before the failing probe.  Those measurements
            were paid for and are exact, so the profiler consumes them
            instead of silently discarding and re-probing.  Empty when
            the first probe of a batch fails.
    """

    def __init__(self, *args: object, partial_gains=None) -> None:
        super().__init__(*args)
        self.partial_gains: dict = dict(partial_gains) if partial_gains else {}


class IndexBuildError(RuntimeError):
    """An index build failed mid-materialization.

    Raised by the scheduler's build path.  The failed index is left
    unmaterialized (any partial physical state is rolled back) so the
    knapsack keeps treating it as absent.
    """


class InjectedFault(RuntimeError):
    """Marker mixin for failures originating from the fault injector.

    Concrete injected failures multiply-inherit from this and the
    site-specific error so production code can catch the site error
    while tests assert the failure was injected.
    """


class InjectedWhatIfFault(InjectedFault, WhatIfProbeError):
    """An injected what-if call failure."""


class InjectedBuildFault(InjectedFault, IndexBuildError):
    """An injected index-build failure."""
