"""Fault injection: reproducible failure plans for the tuning pipeline.

The :class:`FaultInjector` turns every failure mode the resilience
subsystem defends against into a deterministic, configurable event
source:

* **what-if call failures/timeouts** -- a failpoint installed on
  :class:`~repro.optimizer.whatif.WhatIfOptimizer` raises
  :class:`~repro.resilience.errors.InjectedWhatIfFault` per the plan;
* **index-build failures mid-epoch** -- a failpoint installed on the
  :class:`~repro.core.scheduler.Scheduler` raises
  :class:`~repro.resilience.errors.InjectedBuildFault`;
* **truncated/corrupted snapshots** -- :meth:`FaultInjector.corrupt_file`
  damages a snapshot file on disk the way a crash mid-write would.

Faults fire from a per-site :class:`FaultSpec` that combines a
probability (its RNG is seeded, so storms replay exactly), an explicit
call-number schedule, a periodic ``every``-th-call trigger, and manual
arming via :meth:`FaultInjector.arm` (used e.g. to force one build
failure at each workload phase shift).
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
import random
from typing import Dict, Optional, Tuple, Union

from repro.resilience.errors import InjectedBuildFault, InjectedWhatIfFault

#: Sites the injector knows how to fail.
SITES = ("whatif", "build", "snapshot")


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """When a site should fail.

    Any combination of triggers may be set; the site fails when *any*
    of them fires for the current call.

    Attributes:
        probability: Chance in ``[0, 1]`` that any given call fails.
        at_calls: Explicit 1-based call numbers that fail.
        every: Fail every ``every``-th call (1-based), when set.
        limit: Cap on the number of faults this spec may inject
            (``None`` means unlimited).
    """

    probability: float = 0.0
    at_calls: Tuple[int, ...] = ()
    every: Optional[int] = None
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.every is not None and self.every < 1:
            raise ValueError("every must be positive")


class FaultPlan:
    """A named collection of per-site fault specs."""

    def __init__(self, **specs: FaultSpec) -> None:
        for site in specs:
            if site not in SITES:
                raise ValueError(f"unknown fault site {site!r}; expected one of {SITES}")
        self.specs: Dict[str, FaultSpec] = dict(specs)

    def spec(self, site: str) -> Optional[FaultSpec]:
        """The spec for a site, if one was configured."""
        return self.specs.get(site)


class FaultInjector:
    """Deterministic fault source for the tuning pipeline.

    Args:
        plan: Per-site fault specs; omitted sites never fail unless
            armed manually.
        seed: Seed for the probability triggers, so fault storms replay
            bit-for-bit.

    Attributes:
        calls: Per-site count of failpoint evaluations.
        injected: Per-site count of faults actually fired.
    """

    def __init__(self, plan: Optional[FaultPlan] = None, seed: int = 0) -> None:
        self.plan = plan or FaultPlan()
        self._rng = random.Random(seed)
        self.calls: Dict[str, int] = {site: 0 for site in SITES}
        self.injected: Dict[str, int] = {site: 0 for site in SITES}
        self._armed: Dict[str, int] = {site: 0 for site in SITES}

    # ------------------------------------------------------------------
    def arm(self, site: str, count: int = 1) -> None:
        """Force the next ``count`` calls at ``site`` to fail."""
        if site not in SITES:
            raise ValueError(f"unknown fault site {site!r}")
        self._armed[site] += count

    def should_fail(self, site: str) -> bool:
        """Evaluate the plan for one call at ``site`` (advances counters)."""
        self.calls[site] += 1
        fired = False
        if self._armed[site] > 0:
            self._armed[site] -= 1
            fired = True
        else:
            spec = self.plan.spec(site)
            if spec is not None and not (
                spec.limit is not None and self.injected[site] >= spec.limit
            ):
                call = self.calls[site]
                if call in spec.at_calls:
                    fired = True
                elif spec.every is not None and call % spec.every == 0:
                    fired = True
                elif spec.probability > 0.0 and self._rng.random() < spec.probability:
                    fired = True
        if fired:
            self.injected[site] += 1
        return fired

    # ------------------------------------------------------------------
    # Failpoints (installed on pipeline components)
    # ------------------------------------------------------------------
    def whatif_failpoint(self, index) -> None:
        """Failpoint for what-if probes; raises on a planned fault."""
        if self.should_fail("whatif"):
            raise InjectedWhatIfFault(
                f"injected what-if failure probing {index} "
                f"(call #{self.calls['whatif']})"
            )

    def build_failpoint(self, index) -> None:
        """Failpoint for index builds; raises on a planned fault."""
        if self.should_fail("build"):
            raise InjectedBuildFault(
                f"injected build failure for {index} "
                f"(call #{self.calls['build']})"
            )

    def attach(self, tuner) -> None:
        """Install this injector's failpoints on a tuner's components."""
        tuner.whatif.failpoint = self.whatif_failpoint
        tuner.scheduler.failpoint = self.build_failpoint

    # ------------------------------------------------------------------
    # Snapshot corruption
    # ------------------------------------------------------------------
    def corrupt_file(
        self, path: Union[str, pathlib.Path], mode: str = "truncate"
    ) -> None:
        """Damage a snapshot file the way a crash or bad disk would.

        Args:
            path: File to damage in place.
            mode: ``"truncate"`` cuts the file mid-byte (crash during a
                non-atomic write); ``"flip"`` flips one bit in the middle
                (silent media corruption -- caught by the checksum);
                ``"empty"`` leaves a zero-byte file.
        """
        p = pathlib.Path(path)
        data = p.read_bytes()
        self.calls["snapshot"] += 1
        self.injected["snapshot"] += 1
        if mode == "truncate":
            p.write_bytes(data[: max(1, len(data) // 2)])
        elif mode == "flip":
            mid = len(data) // 2
            flipped = bytes([data[mid] ^ 0x40])
            p.write_bytes(data[:mid] + flipped + data[mid + 1 :])
        elif mode == "empty":
            p.write_bytes(b"")
        else:
            raise ValueError(f"unknown corruption mode {mode!r}")
        # Make sure the damage is on disk before any reader opens it.
        fd = os.open(p, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
