"""Resilience subsystem: fault injection, circuit breaking, retries.

A production on-line tuner must degrade gracefully rather than die: a
broken what-if interface demotes profiling to crude estimates (the
paper's level-1 statistics), a failed index build is retried with
backoff while the knapsack treats the index as unmaterialized, and a
corrupt snapshot is quarantined instead of crashing restore.  This
package holds the reusable mechanisms; the core pipeline wires them in.

Import layering: ``repro.core``/``repro.optimizer`` may import
``repro.resilience.errors``, ``breaker`` and ``retry`` (all
dependency-free); ``faults`` depends only on ``errors``.  Nothing here
imports the core, so there are no cycles.
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.errors import (
    IndexBuildError,
    InjectedBuildFault,
    InjectedFault,
    InjectedWhatIfFault,
    WhatIfProbeError,
)
from repro.resilience.faults import SITES, FaultInjector, FaultPlan, FaultSpec
from repro.resilience.retry import RetryPolicy

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "IndexBuildError",
    "InjectedBuildFault",
    "InjectedFault",
    "InjectedWhatIfFault",
    "RetryPolicy",
    "SITES",
    "WhatIfProbeError",
]
