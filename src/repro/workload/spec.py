"""Declarative column specifications.

Each column of the synthetic schema is described by a :class:`ColumnSpec`
that is the single source of truth for two derivations:

* **statistics** -- paper-scale :class:`~repro.engine.stats.ColumnStats`
  computed analytically (no data needed), which is what the cost-model
  simulation benches run on; and
* **data** -- physical row generation at a reduced scale factor, used by
  examples and integration tests that execute queries for real.

Keeping both derivations on one spec guarantees the physical sample is
distributed like the declared statistics claim.
"""

from __future__ import annotations

import dataclasses
import enum
import random
from typing import List, Optional, Sequence, Tuple

from repro.engine.datatypes import DataType, parse_date
from repro.engine.stats import ColumnStats


class ColumnKind(enum.Enum):
    """How a column's values are distributed."""

    PRIMARY_KEY = "pk"
    FOREIGN_KEY = "fk"
    UNIFORM_INT = "uniform_int"
    UNIFORM_FLOAT = "uniform_float"
    DATE_RANGE = "date"
    CHOICE = "choice"
    UNIQUE_TEXT = "text"


@dataclasses.dataclass(frozen=True)
class ColumnSpec:
    """Specification of one column.

    Attributes:
        name: Column name.
        dtype: Engine data type.
        kind: Value distribution family.
        low / high: Numeric or date-string bounds (kind-dependent).
        choices: Domain for CHOICE columns.
        fk_parent_rows: Cardinality of the referenced key domain for
            FOREIGN_KEY columns.
    """

    name: str
    dtype: DataType
    kind: ColumnKind
    low: Optional[float] = None
    high: Optional[float] = None
    choices: Optional[Tuple[str, ...]] = None
    fk_parent_rows: Optional[int] = None

    # ------------------------------------------------------------------
    # Statistics derivation (paper scale)
    # ------------------------------------------------------------------
    def stats(self, row_count: int) -> ColumnStats:
        """Analytic statistics for this column at ``row_count`` rows."""
        if self.kind is ColumnKind.PRIMARY_KEY:
            return ColumnStats(
                n_distinct=float(row_count),
                min_value=1,
                max_value=row_count,
                correlation=1.0,
            )
        if self.kind is ColumnKind.FOREIGN_KEY:
            domain = int(self.fk_parent_rows or row_count)
            return ColumnStats(
                n_distinct=float(min(row_count, domain)),
                min_value=1,
                max_value=domain,
            )
        if self.kind is ColumnKind.UNIFORM_INT:
            domain = int(self.high - self.low) + 1
            return ColumnStats(
                n_distinct=float(min(row_count, domain)),
                min_value=int(self.low),
                max_value=int(self.high),
            )
        if self.kind is ColumnKind.UNIFORM_FLOAT:
            return ColumnStats(
                n_distinct=float(row_count),
                min_value=float(self.low),
                max_value=float(self.high),
            )
        if self.kind is ColumnKind.DATE_RANGE:
            lo = parse_date(str(self.low))
            hi = parse_date(str(self.high))
            # Fact-table dates track insertion order in TPC-H-style data
            # (orders arrive roughly chronologically), so declare a high
            # physical-order correlation; this is what makes date-range
            # index scans cheap in PostgreSQL too.
            return ColumnStats(
                n_distinct=float(min(row_count, hi - lo + 1)),
                min_value=lo,
                max_value=hi,
                correlation=0.9,
            )
        if self.kind is ColumnKind.CHOICE:
            ordered = sorted(self.choices)
            return ColumnStats(
                n_distinct=float(min(row_count, len(ordered))),
                min_value=ordered[0],
                max_value=ordered[-1],
            )
        # UNIQUE_TEXT: high-cardinality strings; index candidates on these
        # are rarely useful, which is the realistic behaviour.
        return ColumnStats(
            n_distinct=float(row_count), min_value="a", max_value="z"
        )

    # ------------------------------------------------------------------
    # Data derivation (physical scale)
    # ------------------------------------------------------------------
    def generate(self, rng: random.Random, row_index: int, row_count: int):
        """One physical value for row ``row_index`` of ``row_count``."""
        if self.kind is ColumnKind.PRIMARY_KEY:
            return row_index + 1
        if self.kind is ColumnKind.FOREIGN_KEY:
            return rng.randint(1, int(self.fk_parent_rows or row_count))
        if self.kind is ColumnKind.UNIFORM_INT:
            return rng.randint(int(self.low), int(self.high))
        if self.kind is ColumnKind.UNIFORM_FLOAT:
            return rng.uniform(float(self.low), float(self.high))
        if self.kind is ColumnKind.DATE_RANGE:
            lo = parse_date(str(self.low))
            hi = parse_date(str(self.high))
            return rng.randint(lo, hi)
        if self.kind is ColumnKind.CHOICE:
            return rng.choice(self.choices)
        return f"{self.name}_{row_index}_{rng.randrange(1 << 30)}"


@dataclasses.dataclass(frozen=True)
class TableSpec:
    """Specification of one table: columns plus the paper-scale cardinality."""

    name: str
    columns: Tuple[ColumnSpec, ...]
    row_count: int

    def column(self, name: str) -> ColumnSpec:
        """Look up a column spec by name.

        Raises:
            KeyError: if the column is not part of the table.
        """
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"no column {name!r} in table spec {self.name!r}")

    @property
    def row_width(self) -> int:
        """Average row payload width in bytes."""
        return sum(c.dtype.width for c in self.columns)


def scaled_rows(spec: TableSpec, scale: float, minimum: int = 5) -> int:
    """Physical row count for a table at a data scale factor."""
    return max(minimum, min(spec.row_count, int(round(spec.row_count * scale))))


def generate_rows(
    spec: TableSpec, physical_rows: int, rng: random.Random
) -> List[Sequence]:
    """Generate ``physical_rows`` rows for a table spec."""
    return [
        tuple(col.generate(rng, i, physical_rows) for col in spec.columns)
        for i in range(physical_rows)
    ]
