"""Adversarial scenario: a cost model that over-promises index benefit.

The guardrail subsystem (``repro.guardrails``) exists for exactly one
failure mode: the optimizer's *predicted* benefit of an index diverges
from its *observed* benefit at execution time.  This module manufactures
that divergence deterministically so benchmarks and tests can measure
how fast quarantine reacts and how much regret it saves.

The construction: a ``facts`` table whose ``f_skew`` column physically
holds a heavy point mass (by default 85% of rows share one hot value),
while the catalog statistics *claim* the column is uniform over a large
domain -- the kind of lie a stale ANALYZE or a mis-scaled statistics
import produces in real systems.  An equality predicate on the hot value
is then predicted to be needle-selective (``1/n_distinct``), so the
what-if optimizer forecasts a large gain for an index on ``f_skew``;
executing the index plan actually touches most of the heap, so the
observed gain is near zero.  A second column, ``f_grp``, keeps truthful
statistics -- its index genuinely helps, and guardrails must leave it
alone (no false quarantines).

Usage::

    store = build_adversarial_store(mislead=True)
    workload = misleading_workload(store.catalog, length=240)
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from typing import List, Optional, Sequence, Tuple

from repro.engine.catalog import Catalog, ColumnDef, TableDef
from repro.engine.cost_params import CostParams
from repro.engine.datatypes import DataType
from repro.engine.stats import ColumnStats
from repro.engine.storage import PhysicalStore
from repro.sql.ast import (
    AggFunc,
    Aggregate,
    ColumnExpr,
    CompareOp,
    ComparisonPredicate,
    Query,
    SelectItem,
)
from repro.workload.phases import Workload

#: Table and column names of the adversarial schema.
FACTS_TABLE = "facts"
SKEW_COLUMN = "f_skew"
HONEST_COLUMN = "f_grp"

#: The value carrying the physical point mass.
HOT_VALUE = 7

#: Claimed (and, for the cold tail, actual) domain of ``f_skew``.
SKEW_DOMAIN = 10_000

#: Domain of the honest ``f_grp`` column -- wide enough that equality
#: lookups are genuinely selective, so the honest index truly earns its
#: predicted benefit (guardrails must verify it, not quarantine it).
HONEST_DOMAIN = 2_000


def build_adversarial_store(
    rows: int = 4_000,
    seed: int = 7,
    skew_fraction: float = 0.85,
    mislead: bool = True,
    params: Optional[CostParams] = None,
) -> PhysicalStore:
    """Build the facts table with (optionally) lying statistics.

    Args:
        rows: Physical row count of the facts table.
        seed: RNG seed for reproducible data.
        skew_fraction: Fraction of rows whose ``f_skew`` equals
            :data:`HOT_VALUE`.
        mislead: When True, overwrite the measured ``f_skew`` statistics
            with a uniform claim over :data:`SKEW_DOMAIN` distinct values
            (the adversarial lie).  When False, statistics stay truthful
            -- the control arm where guardrails must change nothing.
        params: Cost parameters; defaults to the engine's standard.

    Returns:
        A populated :class:`~repro.engine.storage.PhysicalStore` whose
        catalog carries physical-scale statistics (predicted and observed
        costs live on the same scale, so benchmark regret is directly
        comparable).
    """
    rng = random.Random(seed)
    catalog = Catalog(params=params)
    catalog.add_table(
        TableDef(
            name=FACTS_TABLE,
            columns=[
                ColumnDef("f_id", DataType.INT),
                ColumnDef(SKEW_COLUMN, DataType.INT),
                ColumnDef(HONEST_COLUMN, DataType.INT),
            ],
        )
    )
    store = PhysicalStore(catalog)
    heap = store.create_heap(FACTS_TABLE)
    heap.insert_many(
        (
            i + 1,
            HOT_VALUE
            if rng.random() < skew_fraction
            else rng.randint(1, SKEW_DOMAIN),
            rng.randint(1, HONEST_DOMAIN),
        )
        for i in range(rows)
    )
    store.analyze(FACTS_TABLE)
    if mislead:
        # The lie: uniform over SKEW_DOMAIN distinct values, no
        # histogram.  Equality on any value -- including the hot one --
        # is now predicted at 1/SKEW_DOMAIN selectivity.
        catalog.set_stats(
            FACTS_TABLE,
            SKEW_COLUMN,
            ColumnStats(
                n_distinct=float(SKEW_DOMAIN),
                min_value=1,
                max_value=SKEW_DOMAIN,
            ),
        )
    return store


def misleading_workload(
    catalog: Catalog,
    length: int = 240,
    seed: int = 0,
    hot_fraction: float = 0.7,
) -> Workload:
    """A query stream dominated by the over-promised predicate.

    ``hot_fraction`` of the queries are ``COUNT(*) WHERE f_skew = HOT``
    (predicted selective, actually not); the rest are honest equality
    lookups on ``f_grp`` whose index genuinely earns its keep.  Both
    columns become COLT candidates, so a tuner without guardrails
    materializes the f_skew index and keeps paying for it.

    Args:
        catalog: The adversarial store's catalog (only used for shape;
            predicates are bound directly, not drawn from statistics).
        length: Number of queries.
        seed: RNG seed.
        hot_fraction: Fraction of hot-value skew queries.
    """
    del catalog  # shape is fixed; kept for builder-signature symmetry
    rng = random.Random(seed)
    queries = []
    source = []
    for _ in range(length):
        if rng.random() < hot_fraction:
            queries.append(_equality_count(SKEW_COLUMN, HOT_VALUE))
            source.append("misleading-hot")
        else:
            queries.append(
                _equality_count(HONEST_COLUMN, rng.randint(1, HONEST_DOMAIN))
            )
            source.append("honest")
    return Workload(
        queries=queries,
        source=source,
        description=(
            f"misleading(n={length}, hot={hot_fraction:.0%}, "
            f"table={FACTS_TABLE})"
        ),
    )


def _equality_count(column: str, value: int) -> Query:
    return _count_query(FACTS_TABLE, [(column, CompareOp.EQ, value)])


def _count_query(
    table: str, predicates: Sequence[Tuple[str, CompareOp, int]]
) -> Query:
    return Query(
        tables=[table],
        select=[SelectItem(expr=Aggregate(func=AggFunc.COUNT, arg=None))],
        filters=[
            ComparisonPredicate(
                column=ColumnExpr(column, table), op=op, value=value
            )
            for column, op, value in predicates
        ],
    )


# ======================================================================
# Bandit scenario suite: the four regimes where what-if tuners break
# ======================================================================
#
# Each builder returns a :class:`Scenario`: a fresh physical store plus
# a deterministic event stream (queries and insert batches).  Builders
# are *pure functions of their arguments* -- no dict-order iteration, no
# global RNG -- so two processes with the same seed produce streams with
# identical :meth:`Scenario.signature` hashes (PR 4's seeded-run
# discipline, enforced by a cross-process test).


@dataclasses.dataclass(frozen=True)
class ScenarioEvent:
    """One event of a scenario stream.

    Attributes:
        kind: ``"query"`` or ``"insert"``.
        query: The bound query (query events only).
        table: Insert target (insert events only).
        rows: Concrete rows to insert (insert events only).
    """

    kind: str
    query: Optional[Query] = None
    table: Optional[str] = None
    rows: Optional[Tuple[Tuple, ...]] = None


@dataclasses.dataclass
class Scenario:
    """A self-contained adversarial benchmark scenario.

    Attributes:
        name: Registry key (also the benchmark arm label).
        description: One-line summary of the failure regime.
        store: A fresh physical store (each builder call creates its
            own -- tuners mutate stores, so engine arms never share one).
        events: The deterministic event stream.
        drift_at: Event index where the query distribution flips
            (drift scenario only; None elsewhere).
    """

    name: str
    description: str
    store: PhysicalStore
    events: List[ScenarioEvent]
    drift_at: Optional[int] = None

    @property
    def catalog(self) -> Catalog:
        """The store's catalog."""
        return self.store.catalog

    @property
    def queries(self) -> List[Query]:
        """Just the query events, in order."""
        return [e.query for e in self.events if e.kind == "query"]

    def write_fraction(self) -> float:
        """Fraction of events that are insert batches."""
        if not self.events:
            return 0.0
        writes = sum(1 for e in self.events if e.kind == "insert")
        return writes / len(self.events)

    def repeat_rate(self) -> float:
        """Fraction of query events whose exact shape appeared before."""
        seen = set()
        repeats = 0
        total = 0
        for event in self.events:
            if event.kind != "query":
                continue
            total += 1
            key = _canon_query(event.query)
            if key in seen:
                repeats += 1
            seen.add(key)
        return repeats / total if total else 0.0

    def signature(self) -> str:
        """SHA-256 over the canonical event stream (cross-process stable)."""
        digest = hashlib.sha256()
        for event in self.events:
            digest.update(_canon_event(event).encode("utf-8"))
            digest.update(b"\n")
        return digest.hexdigest()


def _canon_query(query: Query) -> str:
    parts = [",".join(sorted(query.tables))]
    for pred in query.filters:
        parts.append(
            f"{pred.column.table}.{pred.column.column}"
            f"{pred.op.value}{pred.value!r}"
        )
    return "|".join(parts)


def _canon_event(event: ScenarioEvent) -> str:
    if event.kind == "query":
        return "q:" + _canon_query(event.query)
    rows = ";".join(",".join(map(str, row)) for row in event.rows or ())
    return f"i:{event.table}:{rows}"


# ----------------------------------------------------------------------
# 1. Ad-hoc: never-repeating queries over columns with lying statistics
# ----------------------------------------------------------------------
ADHOC_TABLE = "wide"
ADHOC_LIE_COLUMNS = 8
ADHOC_HOT = 3
ADHOC_ROWS = 3_000
ADHOC_CLAIMED_DOMAIN = 10_000


def build_adhoc_scenario(length: int = 240, seed: int = 11) -> Scenario:
    """Ad-hoc regime: no query ever repeats, and statistics over-promise.

    A ``wide`` table carries :data:`ADHOC_LIE_COLUMNS` skewed columns
    (80% of rows share one hot value each) whose statistics *claim*
    uniformity over :data:`ADHOC_CLAIMED_DOMAIN` values.  Every query
    pairs an equality on a rotating skewed column with a fresh never-
    repeating id-range predicate, so no two queries share a shape:
    COLT's per-cluster profiling gets one sample per cluster and its
    crude estimates trust the lie, so it materializes index after index
    that hurts at execution time.  A bandit generalizes the observed
    near-zero rewards across arms through the shared linear model.
    """
    rng = random.Random(seed)
    columns = [ColumnDef("w_id", DataType.INT)] + [
        ColumnDef(f"w_c{j:02d}", DataType.INT) for j in range(ADHOC_LIE_COLUMNS)
    ]
    catalog = Catalog()
    catalog.add_table(TableDef(name=ADHOC_TABLE, columns=columns))
    store = PhysicalStore(catalog)
    heap = store.create_heap(ADHOC_TABLE)
    heap.insert_many(
        tuple(
            [i + 1]
            + [
                ADHOC_HOT
                if rng.random() < 0.8
                else rng.randint(1, ADHOC_CLAIMED_DOMAIN)
                for _ in range(ADHOC_LIE_COLUMNS)
            ]
        )
        for i in range(ADHOC_ROWS)
    )
    store.analyze(ADHOC_TABLE)
    for j in range(ADHOC_LIE_COLUMNS):
        catalog.set_stats(
            ADHOC_TABLE,
            f"w_c{j:02d}",
            ColumnStats(
                n_distinct=float(ADHOC_CLAIMED_DOMAIN),
                min_value=1,
                max_value=ADHOC_CLAIMED_DOMAIN,
            ),
        )

    events: List[ScenarioEvent] = []
    for i in range(length):
        column = f"w_c{(i * 5 + seed) % ADHOC_LIE_COLUMNS:02d}"
        lo = rng.randint(1, ADHOC_ROWS - 400)
        events.append(
            ScenarioEvent(
                kind="query",
                query=_count_query(
                    ADHOC_TABLE,
                    [
                        (column, CompareOp.EQ, ADHOC_HOT),
                        ("w_id", CompareOp.GE, lo),
                        ("w_id", CompareOp.LE, lo + 400),
                    ],
                ),
            )
        )
    return Scenario(
        name="adhoc",
        description=(
            "never-repeating ad-hoc queries over columns whose statistics "
            "over-promise index benefit"
        ),
        store=store,
        events=events,
    )


# ----------------------------------------------------------------------
# 2. HTAP: heavy write mix shifting the index cost/benefit balance
# ----------------------------------------------------------------------
HTAP_TABLE = "orders"
HTAP_ROWS = 2_500
HTAP_CUST_DOMAIN = 1_500
HTAP_REGION_DOMAIN = 8
HTAP_WRITE_FRACTION = 0.3
HTAP_BATCH_ROWS = 40


def build_htap_scenario(length: int = 300, seed: int = 13) -> Scenario:
    """HTAP regime: selective lookups interleaved with heavy writes.

    Statistics are honest; the difficulty is the write mix -- roughly
    :data:`HTAP_WRITE_FRACTION` of events are insert batches, so every
    materialized index pays continuous maintenance, shrinking the margin
    a lookup index earns.  The tuner that tracks *observed* cost under
    write pressure keeps only indexes that pay for their upkeep.
    """
    rng = random.Random(seed)
    catalog = Catalog()
    catalog.add_table(
        TableDef(
            name=HTAP_TABLE,
            columns=[
                ColumnDef("o_id", DataType.INT),
                ColumnDef("o_cust", DataType.INT),
                ColumnDef("o_region", DataType.INT),
            ],
        )
    )
    store = PhysicalStore(catalog)
    heap = store.create_heap(HTAP_TABLE)
    heap.insert_many(
        (
            i + 1,
            rng.randint(1, HTAP_CUST_DOMAIN),
            rng.randint(1, HTAP_REGION_DOMAIN),
        )
        for i in range(HTAP_ROWS)
    )
    store.analyze(HTAP_TABLE)

    events: List[ScenarioEvent] = []
    next_id = HTAP_ROWS
    for _ in range(length):
        if rng.random() < HTAP_WRITE_FRACTION:
            rows = tuple(
                (
                    next_id + k + 1,
                    rng.randint(1, HTAP_CUST_DOMAIN),
                    rng.randint(1, HTAP_REGION_DOMAIN),
                )
                for k in range(HTAP_BATCH_ROWS)
            )
            next_id += HTAP_BATCH_ROWS
            events.append(
                ScenarioEvent(kind="insert", table=HTAP_TABLE, rows=rows)
            )
        elif rng.random() < 0.8:
            events.append(
                ScenarioEvent(
                    kind="query",
                    query=_count_query(
                        HTAP_TABLE,
                        [
                            (
                                "o_cust",
                                CompareOp.EQ,
                                rng.randint(1, HTAP_CUST_DOMAIN),
                            )
                        ],
                    ),
                )
            )
        else:
            events.append(
                ScenarioEvent(
                    kind="query",
                    query=_count_query(
                        HTAP_TABLE,
                        [
                            (
                                "o_region",
                                CompareOp.EQ,
                                rng.randint(1, HTAP_REGION_DOMAIN),
                            )
                        ],
                    ),
                )
            )
    return Scenario(
        name="htap",
        description=(
            "HTAP mix: selective customer lookups under a heavy insert "
            "stream charging index maintenance"
        ),
        store=store,
        events=events,
    )


# ----------------------------------------------------------------------
# 3. Correlated columns: the independence assumption is the lie
# ----------------------------------------------------------------------
CORR_TABLE = "corr"
CORR_ROWS = 6_000
#: Domain of the correlated pair.  Chosen so the *predicted* conjunction
#: (independence: ``1/DOMAIN^2``) looks needle-selective -- a composite
#: index plan is forecast cheaper than the sequential scan -- while the
#: *actual* fraction (``1/DOMAIN``) makes that plan several times more
#: expensive than the scan at execution time.  Each single-column index
#: is honestly priced (``1/DOMAIN`` predicted and actual) and correctly
#: rejected, so only the correlation lie misleads.
CORR_DOMAIN = 30
CORR_HONEST_DOMAIN = 1_200


def build_correlated_scenario(length: int = 280, seed: int = 17) -> Scenario:
    """Misleading-stats regime: perfectly correlated filter columns.

    ``c_a`` and ``c_b`` always hold the same value drawn from a small
    domain, and every per-column statistic is *honest* -- the lie is the
    optimizer's independence assumption, which prices the conjunctive
    predicate ``c_a = v AND c_b = v`` at ``1/64`` selectivity when the
    true fraction is ``1/8``.  A what-if tuner therefore materializes a
    composite index whose executed plans touch an eighth of the table
    through random probes; observed rewards expose the mistake
    immediately.  A minority of honest ``c_h`` lookups gives both
    engines one genuinely good index to find.
    """
    rng = random.Random(seed)
    catalog = Catalog()
    catalog.add_table(
        TableDef(
            name=CORR_TABLE,
            columns=[
                ColumnDef("c_id", DataType.INT),
                ColumnDef("c_a", DataType.INT),
                ColumnDef("c_b", DataType.INT),
                ColumnDef("c_h", DataType.INT),
            ],
        )
    )
    store = PhysicalStore(catalog)
    heap = store.create_heap(CORR_TABLE)

    def _row(i: int) -> Tuple[int, int, int, int]:
        v = rng.randint(1, CORR_DOMAIN)
        return (i + 1, v, v, rng.randint(1, CORR_HONEST_DOMAIN))

    heap.insert_many(_row(i) for i in range(CORR_ROWS))
    store.analyze(CORR_TABLE)

    events: List[ScenarioEvent] = []
    for _ in range(length):
        if rng.random() < 0.7:
            v = rng.randint(1, CORR_DOMAIN)
            events.append(
                ScenarioEvent(
                    kind="query",
                    query=_count_query(
                        CORR_TABLE,
                        [
                            ("c_a", CompareOp.EQ, v),
                            ("c_b", CompareOp.EQ, v),
                        ],
                    ),
                )
            )
        else:
            events.append(
                ScenarioEvent(
                    kind="query",
                    query=_count_query(
                        CORR_TABLE,
                        [
                            (
                                "c_h",
                                CompareOp.EQ,
                                rng.randint(1, CORR_HONEST_DOMAIN),
                            )
                        ],
                    ),
                )
            )
    return Scenario(
        name="correlated",
        description=(
            "correlated filter columns: honest per-column statistics, "
            "lying independence assumption"
        ),
        store=store,
        events=events,
    )


# ----------------------------------------------------------------------
# 4. Drift: the useful column flips mid-epoch
# ----------------------------------------------------------------------
DRIFT_TABLE = "clicks"
DRIFT_ROWS = 3_000
DRIFT_DOMAIN = 1_000
DRIFT_AT = 157


def build_drift_scenario(
    length: int = 320, seed: int = 19, drift_at: int = DRIFT_AT
) -> Scenario:
    """Drift regime: the workload flips to a different column mid-epoch.

    All statistics are honest; the challenge is adaptation speed.  The
    first ``drift_at`` queries filter on ``k_early``; from then on every
    query filters on ``k_late``.  ``drift_at`` deliberately does not
    align with any common epoch length, so the flip lands mid-epoch and
    stale benefit windows (COLT) or stale reward evidence (a bandit
    without forgetting) delay the reconfiguration.
    """
    rng = random.Random(seed)
    catalog = Catalog()
    catalog.add_table(
        TableDef(
            name=DRIFT_TABLE,
            columns=[
                ColumnDef("k_id", DataType.INT),
                ColumnDef("k_early", DataType.INT),
                ColumnDef("k_late", DataType.INT),
            ],
        )
    )
    store = PhysicalStore(catalog)
    heap = store.create_heap(DRIFT_TABLE)
    heap.insert_many(
        (
            i + 1,
            rng.randint(1, DRIFT_DOMAIN),
            rng.randint(1, DRIFT_DOMAIN),
        )
        for i in range(DRIFT_ROWS)
    )
    store.analyze(DRIFT_TABLE)

    events: List[ScenarioEvent] = []
    for i in range(length):
        column = "k_early" if i < drift_at else "k_late"
        events.append(
            ScenarioEvent(
                kind="query",
                query=_count_query(
                    DRIFT_TABLE,
                    [(column, CompareOp.EQ, rng.randint(1, DRIFT_DOMAIN))],
                ),
            )
        )
    return Scenario(
        name="drift",
        description=(
            "mid-epoch drift: the filtered column flips at query "
            f"{drift_at}"
        ),
        store=store,
        events=events,
        drift_at=drift_at,
    )


#: Scenario builders by name (the benchmark and CLI iterate this).
SCENARIOS = {
    "adhoc": build_adhoc_scenario,
    "htap": build_htap_scenario,
    "correlated": build_correlated_scenario,
    "drift": build_drift_scenario,
}
