"""Adversarial scenario: a cost model that over-promises index benefit.

The guardrail subsystem (``repro.guardrails``) exists for exactly one
failure mode: the optimizer's *predicted* benefit of an index diverges
from its *observed* benefit at execution time.  This module manufactures
that divergence deterministically so benchmarks and tests can measure
how fast quarantine reacts and how much regret it saves.

The construction: a ``facts`` table whose ``f_skew`` column physically
holds a heavy point mass (by default 85% of rows share one hot value),
while the catalog statistics *claim* the column is uniform over a large
domain -- the kind of lie a stale ANALYZE or a mis-scaled statistics
import produces in real systems.  An equality predicate on the hot value
is then predicted to be needle-selective (``1/n_distinct``), so the
what-if optimizer forecasts a large gain for an index on ``f_skew``;
executing the index plan actually touches most of the heap, so the
observed gain is near zero.  A second column, ``f_grp``, keeps truthful
statistics -- its index genuinely helps, and guardrails must leave it
alone (no false quarantines).

Usage::

    store = build_adversarial_store(mislead=True)
    workload = misleading_workload(store.catalog, length=240)
"""

from __future__ import annotations

import random
from typing import Optional

from repro.engine.catalog import Catalog, ColumnDef, TableDef
from repro.engine.cost_params import CostParams
from repro.engine.datatypes import DataType
from repro.engine.stats import ColumnStats
from repro.engine.storage import PhysicalStore
from repro.sql.ast import (
    AggFunc,
    Aggregate,
    ColumnExpr,
    CompareOp,
    ComparisonPredicate,
    Query,
    SelectItem,
)
from repro.workload.phases import Workload

#: Table and column names of the adversarial schema.
FACTS_TABLE = "facts"
SKEW_COLUMN = "f_skew"
HONEST_COLUMN = "f_grp"

#: The value carrying the physical point mass.
HOT_VALUE = 7

#: Claimed (and, for the cold tail, actual) domain of ``f_skew``.
SKEW_DOMAIN = 10_000

#: Domain of the honest ``f_grp`` column -- wide enough that equality
#: lookups are genuinely selective, so the honest index truly earns its
#: predicted benefit (guardrails must verify it, not quarantine it).
HONEST_DOMAIN = 2_000


def build_adversarial_store(
    rows: int = 4_000,
    seed: int = 7,
    skew_fraction: float = 0.85,
    mislead: bool = True,
    params: Optional[CostParams] = None,
) -> PhysicalStore:
    """Build the facts table with (optionally) lying statistics.

    Args:
        rows: Physical row count of the facts table.
        seed: RNG seed for reproducible data.
        skew_fraction: Fraction of rows whose ``f_skew`` equals
            :data:`HOT_VALUE`.
        mislead: When True, overwrite the measured ``f_skew`` statistics
            with a uniform claim over :data:`SKEW_DOMAIN` distinct values
            (the adversarial lie).  When False, statistics stay truthful
            -- the control arm where guardrails must change nothing.
        params: Cost parameters; defaults to the engine's standard.

    Returns:
        A populated :class:`~repro.engine.storage.PhysicalStore` whose
        catalog carries physical-scale statistics (predicted and observed
        costs live on the same scale, so benchmark regret is directly
        comparable).
    """
    rng = random.Random(seed)
    catalog = Catalog(params=params)
    catalog.add_table(
        TableDef(
            name=FACTS_TABLE,
            columns=[
                ColumnDef("f_id", DataType.INT),
                ColumnDef(SKEW_COLUMN, DataType.INT),
                ColumnDef(HONEST_COLUMN, DataType.INT),
            ],
        )
    )
    store = PhysicalStore(catalog)
    heap = store.create_heap(FACTS_TABLE)
    heap.insert_many(
        (
            i + 1,
            HOT_VALUE
            if rng.random() < skew_fraction
            else rng.randint(1, SKEW_DOMAIN),
            rng.randint(1, HONEST_DOMAIN),
        )
        for i in range(rows)
    )
    store.analyze(FACTS_TABLE)
    if mislead:
        # The lie: uniform over SKEW_DOMAIN distinct values, no
        # histogram.  Equality on any value -- including the hot one --
        # is now predicted at 1/SKEW_DOMAIN selectivity.
        catalog.set_stats(
            FACTS_TABLE,
            SKEW_COLUMN,
            ColumnStats(
                n_distinct=float(SKEW_DOMAIN),
                min_value=1,
                max_value=SKEW_DOMAIN,
            ),
        )
    return store


def misleading_workload(
    catalog: Catalog,
    length: int = 240,
    seed: int = 0,
    hot_fraction: float = 0.7,
) -> Workload:
    """A query stream dominated by the over-promised predicate.

    ``hot_fraction`` of the queries are ``COUNT(*) WHERE f_skew = HOT``
    (predicted selective, actually not); the rest are honest equality
    lookups on ``f_grp`` whose index genuinely earns its keep.  Both
    columns become COLT candidates, so a tuner without guardrails
    materializes the f_skew index and keeps paying for it.

    Args:
        catalog: The adversarial store's catalog (only used for shape;
            predicates are bound directly, not drawn from statistics).
        length: Number of queries.
        seed: RNG seed.
        hot_fraction: Fraction of hot-value skew queries.
    """
    del catalog  # shape is fixed; kept for builder-signature symmetry
    rng = random.Random(seed)
    queries = []
    source = []
    for _ in range(length):
        if rng.random() < hot_fraction:
            queries.append(_equality_count(SKEW_COLUMN, HOT_VALUE))
            source.append("misleading-hot")
        else:
            queries.append(
                _equality_count(HONEST_COLUMN, rng.randint(1, HONEST_DOMAIN))
            )
            source.append("honest")
    return Workload(
        queries=queries,
        source=source,
        description=(
            f"misleading(n={length}, hot={hot_fraction:.0%}, "
            f"table={FACTS_TABLE})"
        ),
    )


def _equality_count(column: str, value: int) -> Query:
    return Query(
        tables=[FACTS_TABLE],
        select=[SelectItem(expr=Aggregate(func=AggFunc.COUNT, arg=None))],
        filters=[
            ComparisonPredicate(
                column=ColumnExpr(column, FACTS_TABLE),
                op=CompareOp.EQ,
                value=value,
            )
        ],
    )
