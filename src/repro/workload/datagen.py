"""Catalog and physical data construction from the schema specs.

Two entry points with different cost/fidelity trade-offs:

* :func:`build_catalog` -- statistics only, at full paper scale.  This is
  what the benchmark harness uses: the optimizer (and therefore COLT)
  behaves exactly as if 6.9M tuples were present, with zero data-gen cost.
* :func:`build_physical` -- a :class:`~repro.engine.storage.PhysicalStore`
  with rows generated at a scale factor, while the catalog still carries
  paper-scale statistics (``analyze(scale_to=...)``).  Examples and
  integration tests use this to actually run queries.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.engine.catalog import Catalog, ColumnDef, TableDef
from repro.engine.cost_params import CostParams
from repro.engine.storage import PhysicalStore
from repro.workload.spec import TableSpec, generate_rows, scaled_rows
from repro.workload.tpch import TPCH_INSTANCES, tpch_schema


def build_catalog(
    instances: int = TPCH_INSTANCES,
    params: Optional[CostParams] = None,
    specs: Optional[List[TableSpec]] = None,
) -> Catalog:
    """Build a catalog with paper-scale declared statistics (no data).

    Args:
        instances: Number of schema instances (the paper uses 4).
        params: Cost parameters; defaults to PostgreSQL-flavoured values.
        specs: Override table specs (defaults to the TPC-H schema).

    Returns:
        A catalog ready for optimization and what-if calls.
    """
    catalog = Catalog(params=params)
    for spec in specs if specs is not None else tpch_schema(instances):
        table = TableDef(
            name=spec.name,
            columns=[ColumnDef(c.name, c.dtype) for c in spec.columns],
            row_count=float(spec.row_count),
        )
        catalog.add_table(table)
        for col in spec.columns:
            catalog.set_stats(spec.name, col.name, col.stats(spec.row_count))
    return catalog


def build_physical(
    instances: int = 1,
    scale: float = 0.01,
    seed: int = 42,
    params: Optional[CostParams] = None,
    specs: Optional[List[TableSpec]] = None,
    paper_scale_stats: bool = True,
) -> PhysicalStore:
    """Build a physical store with generated rows at ``scale``.

    Args:
        instances: Number of schema instances to materialize.
        scale: Fraction of the paper-scale cardinality to generate
            physically (e.g. 0.01 → 12,000 physical lineitem rows).
        seed: RNG seed for reproducible data.
        params: Cost parameters.
        specs: Override table specs.
        paper_scale_stats: When True, catalog statistics describe the
            paper-scale table even though fewer rows are stored; when
            False, statistics match the physical sample.

    Returns:
        A store with heaps populated and statistics installed.
    """
    rng = random.Random(seed)
    table_specs = specs if specs is not None else tpch_schema(instances)
    catalog = Catalog(params=params)
    for spec in table_specs:
        catalog.add_table(
            TableDef(
                name=spec.name,
                columns=[ColumnDef(c.name, c.dtype) for c in spec.columns],
            )
        )
    store = PhysicalStore(catalog)
    for spec in table_specs:
        heap = store.create_heap(spec.name)
        physical = scaled_rows(spec, scale)
        heap.insert_many(generate_rows(spec, physical, rng))
        store.analyze(
            spec.name,
            scale_to=float(spec.row_count) if paper_scale_stats else None,
        )
    return store
