"""Synthetic TPC-H-style data and workload generation.

The paper evaluates COLT on four instances of the TPC-H schema (32 tables,
6,928,120 tuples, 244 indexable attributes -- Table 1) with synthetic query
workloads drawn from fixed, shifting, and noisy distributions.  This
package reconstructs all of it:

* ``spec`` / ``tpch`` -- the schema with declarative column specifications
  from which both paper-scale statistics and physical rows derive.
* ``datagen`` -- catalog construction (declared statistics) and physical
  data generation at a configurable scale factor.
* ``querygen`` -- parameterized query distributions over focus attributes
  with controlled selectivities.
* ``phases`` -- stable, shifting, and noise-injected workload builders
  matching the three experiments of §6.
"""

from repro.workload.adversarial import (
    SCENARIOS,
    Scenario,
    ScenarioEvent,
    build_adhoc_scenario,
    build_adversarial_store,
    build_correlated_scenario,
    build_drift_scenario,
    build_htap_scenario,
    misleading_workload,
)
from repro.workload.datagen import build_catalog, build_physical
from repro.workload.phases import (
    multi_client_workload,
    noisy_workload,
    shifting_workload,
    stable_workload,
)
from repro.workload.querygen import QueryDistribution, QueryTemplate, PredicateSpec
from repro.workload.tpch import TPCH_INSTANCES, dataset_summary, tpch_schema

__all__ = [
    "PredicateSpec",
    "QueryDistribution",
    "QueryTemplate",
    "SCENARIOS",
    "Scenario",
    "ScenarioEvent",
    "TPCH_INSTANCES",
    "build_adhoc_scenario",
    "build_adversarial_store",
    "build_correlated_scenario",
    "build_drift_scenario",
    "build_htap_scenario",
    "build_catalog",
    "build_physical",
    "misleading_workload",
    "dataset_summary",
    "multi_client_workload",
    "noisy_workload",
    "shifting_workload",
    "stable_workload",
    "tpch_schema",
]
