"""Pre-built distributions matching the paper's experimental workloads.

§6.1 describes the workloads only qualitatively; these factories encode
the stated properties:

* **Stable** (Fig. 3): a fixed distribution implying 18 relevant indexes,
  "many of which have high potential benefit", with the space budget
  sized to fit 3-6 of them and no materialized set clearly optimal.
* **Shifting** (Figs. 4-5): four distributions, each focusing on
  different attributes/instances with different selectivities, with some
  overlap between consecutive optimal index sets.
* **Noise** (Fig. 6): two distributions whose optimal index sets are
  disjoint.

Workload structure: each distribution has a handful of *dominant*
templates -- selective predicates on large, well-correlated columns whose
indexes pay off decisively -- plus a low-weight *tail* of templates that
widens the relevant-index set without moving the optimum.  This mirrors
the paper's setup, where the optimal sets are clear-cut enough that COLT
converges to OFFLINE within ~100 queries.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.catalog import Catalog
from repro.workload.querygen import (
    JoinSpec,
    PredicateSpec,
    QueryDistribution,
    QueryTemplate,
)

# Selectivity bands used throughout: the paper's clustering separates
# "selective" (0-2%) from "non-selective" (2-100%) predicates.
SELECTIVE = (0.0003, 0.01)
# Band for predicates on large uncorrelated columns, where the index-scan
# break-even sits near 0.2% selectivity.
NEEDLE = (0.0002, 0.002)
MODERATE = (0.02, 0.08)

# Weight given to each tail template (the long tail of occasionally
# touched attributes that populate the candidate set).
TAIL_WEIGHT = 0.25


def _t(
    table: str,
    column: str,
    band: Tuple[float, float] = SELECTIVE,
    weight: float = 1.0,
    aggregate: bool = False,
) -> QueryTemplate:
    """Single-table template with one focus predicate."""
    return QueryTemplate(
        predicates=(PredicateSpec(table, column, band),),
        weight=weight,
        aggregate=aggregate,
    )


def _tj(
    table: str,
    column: str,
    join_table: str,
    left: str,
    right: str,
    band: Tuple[float, float] = SELECTIVE,
    weight: float = 1.0,
) -> QueryTemplate:
    """Template with one focus predicate plus a join to a second table."""
    return QueryTemplate(
        predicates=(PredicateSpec(table, column, band),),
        join=JoinSpec(table=join_table, left_column=left, right_column=right),
        weight=weight,
    )


def _tail(instance: int) -> Tuple[QueryTemplate, ...]:
    """Low-weight tail templates over one schema instance.

    Mostly moderate selectivities on secondary attributes: they mine
    candidates (and thus contribute to the 18 relevant indexes) without
    making their indexes worth the budget.
    """
    i = instance
    return (
        _t(f"lineitem_{i}", "l_partkey", MODERATE, weight=TAIL_WEIGHT),
        _t(f"lineitem_{i}", "l_quantity", MODERATE, weight=TAIL_WEIGHT),
        _t(f"lineitem_{i}", "l_extendedprice", MODERATE, weight=TAIL_WEIGHT),
        _t(f"lineitem_{i}", "l_discount", MODERATE, weight=TAIL_WEIGHT, aggregate=True),
        _t(f"orders_{i}", "o_totalprice", MODERATE, weight=TAIL_WEIGHT),
        _t(f"part_{i}", "p_size", MODERATE, weight=TAIL_WEIGHT, aggregate=True),
        _t(f"part_{i}", "p_retailprice", MODERATE, weight=TAIL_WEIGHT),
        _t(f"customer_{i}", "c_acctbal", MODERATE, weight=TAIL_WEIGHT),
        _t(f"supplier_{i}", "s_acctbal", MODERATE, weight=TAIL_WEIGHT),
        _t(f"partsupp_{i}", "ps_availqty", MODERATE, weight=TAIL_WEIGHT),
    )


def stable_distribution() -> QueryDistribution:
    """The Figure 3 distribution: 18 relevant indexes on instances 1-2.

    Dominant indexes (decisively beneficial): lineitem_1.l_shipdate,
    lineitem_2.l_shipdate, orders_1.o_orderdate, orders_2.o_orderdate,
    and lineitem_1.l_receiptdate -- together they *exceed* the Figure 3
    budget, so (as the paper puts it) "no materialized set is clearly
    optimal" and the tuners must pick.  A tail over instance 1 plus two
    join templates widens the relevant set to 18.
    """
    dominants = (
        _t("lineitem_1", "l_shipdate", weight=3.5),
        _t("lineitem_2", "l_shipdate", weight=2.5),
        _t("orders_1", "o_orderdate", weight=2.5),
        _t("orders_2", "o_orderdate", weight=2.0),
        _t("lineitem_1", "l_receiptdate", weight=1.5),
        _t("partsupp_1", "ps_supplycost", NEEDLE, weight=1.5),
    )
    joins = (
        _tj("lineitem_1", "l_shipdate", "orders_1", "l_orderkey", "o_orderkey", weight=0.5),
        _tj("orders_1", "o_orderdate", "customer_1", "o_custkey", "c_custkey", weight=0.5),
    )
    return QueryDistribution(
        name="stable", templates=dominants + joins + _tail(1)
    )


def phase_distributions() -> List[QueryDistribution]:
    """The four Figure 4 phases, with overlapping optimal index sets."""
    phase1 = QueryDistribution(
        name="phase1",
        templates=(
            _t("lineitem_1", "l_shipdate", weight=3.5),
            _t("orders_1", "o_orderdate", weight=2.5),
            _t("lineitem_1", "l_receiptdate", weight=2.0),
            _t("partsupp_1", "ps_supplycost", NEEDLE, weight=1.0),
        )
        + _tail(1),
    )
    phase2 = QueryDistribution(
        name="phase2",
        templates=(
            # Overlap with phase 1: orders_1.o_orderdate stays relevant.
            _t("orders_1", "o_orderdate", weight=1.5),
            _t("lineitem_2", "l_shipdate", weight=3.5),
            _t("lineitem_2", "l_receiptdate", weight=2.0),
            _t("orders_2", "o_orderdate", weight=2.0),
        )
        + _tail(2),
    )
    phase3 = QueryDistribution(
        name="phase3",
        templates=(
            # Overlap with phase 2: lineitem_2.l_shipdate stays relevant.
            _t("lineitem_2", "l_shipdate", weight=1.5),
            _t("lineitem_3", "l_shipdate", weight=3.5),
            _t("lineitem_3", "l_commitdate", weight=2.0),
            _t("orders_3", "o_orderdate", weight=2.0),
            _t("partsupp_3", "ps_supplycost", NEEDLE, weight=1.0),
        )
        + _tail(3),
    )
    phase4 = QueryDistribution(
        name="phase4",
        templates=(
            # Overlap with phase 3: lineitem_3.l_shipdate stays relevant.
            _t("lineitem_3", "l_shipdate", weight=1.5),
            _t("lineitem_4", "l_shipdate", weight=3.5),
            _t("lineitem_4", "l_receiptdate", weight=2.0),
            _t("orders_4", "o_orderdate", weight=2.5),
        )
        + _tail(4),
    )
    return [phase1, phase2, phase3, phase4]


def noise_distributions() -> Tuple[QueryDistribution, QueryDistribution]:
    """The Figure 6 pair (Q1, Q2) with disjoint optimal index sets."""
    q1 = QueryDistribution(
        name="q1_base",
        templates=(
            _t("lineitem_1", "l_shipdate", weight=3.5),
            _t("orders_1", "o_orderdate", weight=2.5),
            _t("lineitem_1", "l_receiptdate", weight=2.0),
        ),
    )
    q2 = QueryDistribution(
        name="q2_noise",
        templates=(
            _t("lineitem_2", "l_shipdate", weight=3.5),
            _t("orders_2", "o_orderdate", weight=2.5),
            _t("lineitem_2", "l_commitdate", weight=2.0),
        ),
    )
    return q1, q2


def relevant_index_count(catalog: Optional[Catalog] = None) -> int:
    """Number of relevant indexes for the stable workload (paper: 18).

    Args:
        catalog: Catalog used to resolve index definitions; a fresh
            paper-scale catalog is built when omitted.
    """
    if catalog is None:
        from repro.workload.datagen import build_catalog

        catalog = build_catalog()
    return len(stable_distribution().relevant_indexes(catalog))
