"""Parameterized query generation.

A :class:`QueryDistribution` is the formal object the paper calls "the
current query distribution Q": a weighted mixture of templates, each of
which focuses on specific attributes with specific selectivity ranges.
Sampling a template yields a bound :class:`~repro.sql.ast.Query` whose
predicate literals are drawn so that the predicate hits the requested
selectivity under the catalog's statistics.

The *relevant indexes* of a distribution (the single-column indexes its
predicates can use) are exactly what COLT should discover; the
experiments size the storage budget relative to this set.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Sequence, Tuple

from repro.engine.catalog import Catalog
from repro.engine.datatypes import DataType
from repro.engine.index import IndexDef
from repro.sql.ast import (
    AggFunc,
    Aggregate,
    BetweenPredicate,
    ColumnExpr,
    CompareOp,
    ComparisonPredicate,
    JoinPredicate,
    Query,
    SelectItem,
)


@dataclasses.dataclass(frozen=True)
class PredicateSpec:
    """A selection-attribute focus: column plus a selectivity band.

    Attributes:
        table: Table of the focused attribute.
        column: The focused attribute (an index candidate).
        selectivity: (low, high) band the sampled predicate's selectivity
            is drawn from.  The paper's phases use "selective" (< 2%) and
            "non-selective" (>= 2%) bands.
    """

    table: str
    column: str
    selectivity: Tuple[float, float] = (0.001, 0.02)


@dataclasses.dataclass(frozen=True)
class JoinSpec:
    """An optional join from the template's primary table to another."""

    table: str
    left_column: str
    right_column: str
    predicate: Optional[PredicateSpec] = None


@dataclasses.dataclass(frozen=True)
class QueryTemplate:
    """One query shape within a distribution.

    Attributes:
        predicates: Selection predicates on the primary table (the first
            predicate's table is the primary table).
        join: Optional join to a second table.
        aggregate: Whether the query computes COUNT(*) instead of
            projecting columns.
        weight: Relative sampling weight within the distribution.
    """

    predicates: Tuple[PredicateSpec, ...]
    join: Optional[JoinSpec] = None
    aggregate: bool = False
    weight: float = 1.0

    @property
    def table(self) -> str:
        """The primary table."""
        return self.predicates[0].table


@dataclasses.dataclass(frozen=True)
class QueryDistribution:
    """A weighted mixture of query templates.

    Attributes:
        name: Label used in experiment traces.
        templates: The mixture components.
    """

    name: str
    templates: Tuple[QueryTemplate, ...]

    def sample(self, catalog: Catalog, rng: random.Random) -> Query:
        """Draw one query from the distribution."""
        template = _weighted_choice(self.templates, rng)
        return build_query(template, catalog, rng)

    def relevant_indexes(self, catalog: Catalog) -> List[IndexDef]:
        """The single-column indexes this distribution makes relevant.

        Includes indexes on selection attributes and on the inner join
        columns (usable by index nested-loop joins).
        """
        seen = {}
        for template in self.templates:
            for pred in template.predicates:
                seen[(pred.table, pred.column)] = True
            if template.join is not None:
                seen[(template.join.table, template.join.right_column)] = True
                if template.join.predicate is not None:
                    joined = template.join.predicate
                    seen[(joined.table, joined.column)] = True
        return [catalog.index_for(t, c) for (t, c) in sorted(seen)]


def build_query(
    template: QueryTemplate, catalog: Catalog, rng: random.Random
) -> Query:
    """Materialize one bound query from a template."""
    filters = [
        _draw_predicate(spec, catalog, rng) for spec in template.predicates
    ]
    tables = [template.table]
    joins: List[JoinPredicate] = []
    if template.join is not None:
        join = template.join
        tables.append(join.table)
        joins.append(
            JoinPredicate(
                left=ColumnExpr(join.left_column, template.table),
                right=ColumnExpr(join.right_column, join.table),
            )
        )
        if join.predicate is not None:
            filters.append(_draw_predicate(join.predicate, catalog, rng))

    if template.aggregate:
        select = [SelectItem(expr=Aggregate(func=AggFunc.COUNT, arg=None))]
    else:
        first = template.predicates[0]
        select = [SelectItem(expr=ColumnExpr(first.column, first.table))]
        extra = _extra_projection(template, catalog, rng)
        if extra is not None:
            select.append(SelectItem(expr=extra))
    return Query(tables=tables, select=select, filters=filters, joins=joins)


def _extra_projection(
    template: QueryTemplate, catalog: Catalog, rng: random.Random
) -> Optional[ColumnExpr]:
    """A second projected column, for output realism (no plan effect)."""
    columns = catalog.table(template.table).columns
    if len(columns) < 2:
        return None
    choice = rng.choice(columns)
    return ColumnExpr(choice.name, template.table)


def _draw_predicate(spec: PredicateSpec, catalog: Catalog, rng: random.Random):
    """Draw a predicate on the focus column with the target selectivity."""
    stats = catalog.stats(spec.table, spec.column)
    dtype = catalog.table(spec.table).column(spec.column).dtype
    column = ColumnExpr(spec.column, spec.table)
    target = rng.uniform(*spec.selectivity)

    if dtype is DataType.TEXT:
        # Text focus columns have small CHOICE domains; equality gives
        # selectivity 1/|domain| regardless of the requested band.
        value = _text_value(stats, rng)
        return ComparisonPredicate(column=column, op=CompareOp.EQ, value=value)

    if target <= 1.5 / max(1.0, stats.n_distinct):
        value = _numeric_point(stats, dtype, rng)
        return ComparisonPredicate(column=column, op=CompareOp.EQ, value=value)

    lo, hi = _numeric_range(stats, dtype, target, rng)
    return BetweenPredicate(column=column, low=lo, high=hi)


def _numeric_point(stats, dtype: DataType, rng: random.Random):
    if dtype is DataType.FLOAT:
        return rng.uniform(stats.min_value, stats.max_value)
    return rng.randint(int(stats.min_value), int(stats.max_value))


def _numeric_range(stats, dtype: DataType, target: float, rng: random.Random):
    span = stats.max_value - stats.min_value
    width = target * span
    low = stats.min_value + rng.uniform(0.0, max(0.0, span - width))
    high = low + width
    if dtype is not DataType.FLOAT:
        low = int(round(low))
        high = max(low, int(round(high)))
    return low, high


def _text_value(stats, rng: random.Random) -> str:
    # Without access to the concrete domain, sample between the stats
    # bounds; CHOICE stats carry real values as bounds so min/max are
    # always valid members.
    return rng.choice([stats.min_value, stats.max_value])


def _weighted_choice(
    templates: Sequence[QueryTemplate], rng: random.Random
) -> QueryTemplate:
    total = sum(t.weight for t in templates)
    point = rng.uniform(0.0, total)
    acc = 0.0
    for template in templates:
        acc += template.weight
        if point <= acc:
            return template
    return templates[-1]
