"""The paper's data set: four instances of a TPC-H-style schema.

Table 1 of the paper gives the data set characteristics; this module
reconstructs them exactly at the logical level:

* 4 schema instances × 8 tables = **32 tables**
* per-instance cardinalities region 5, nation 25, supplier 2,000,
  part 40,000, customer 30,000, partsupp 160,000, orders 300,000,
  lineitem 1,200,000 → 1,732,030 per instance, **6,928,120 total**
* largest table 1,200,000 tuples, smallest 5 tuples
* 61 columns per instance × 4 = **244 indexable attributes**

Instance tables are suffixed ``_1`` .. ``_4`` (e.g. ``lineitem_2``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.engine.datatypes import DataType
from repro.workload.spec import ColumnKind, ColumnSpec, TableSpec

TPCH_INSTANCES = 4

_DATE_LO = "1992-01-01"
_DATE_HI = "1998-12-01"

_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 2_000,
    "part": 40_000,
    "customer": 30_000,
    "partsupp": 160_000,
    "orders": 300_000,
    "lineitem": 1_200_000,
}


def _pk(name: str) -> ColumnSpec:
    return ColumnSpec(name, DataType.INT, ColumnKind.PRIMARY_KEY)


def _fk(name: str, parent: str) -> ColumnSpec:
    return ColumnSpec(
        name, DataType.INT, ColumnKind.FOREIGN_KEY, fk_parent_rows=_ROWS[parent]
    )


def _int(name: str, low: int, high: int) -> ColumnSpec:
    return ColumnSpec(name, DataType.INT, ColumnKind.UNIFORM_INT, low=low, high=high)


def _flt(name: str, low: float, high: float) -> ColumnSpec:
    return ColumnSpec(
        name, DataType.FLOAT, ColumnKind.UNIFORM_FLOAT, low=low, high=high
    )


def _date(name: str) -> ColumnSpec:
    return ColumnSpec(
        name, DataType.DATE, ColumnKind.DATE_RANGE, low=_DATE_LO, high=_DATE_HI
    )


def _choice(name: str, *values: str) -> ColumnSpec:
    return ColumnSpec(name, DataType.TEXT, ColumnKind.CHOICE, choices=tuple(values))


def _text(name: str) -> ColumnSpec:
    return ColumnSpec(name, DataType.TEXT, ColumnKind.UNIQUE_TEXT)


def _base_tables() -> List[TableSpec]:
    """The 8 per-instance table specs (61 columns total)."""
    return [
        TableSpec(
            "region",
            (
                _pk("r_regionkey"),
                _choice("r_name", "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"),
                _text("r_comment"),
            ),
            _ROWS["region"],
        ),
        TableSpec(
            "nation",
            (
                _pk("n_nationkey"),
                _text("n_name"),
                _fk("n_regionkey", "region"),
                _text("n_comment"),
            ),
            _ROWS["nation"],
        ),
        TableSpec(
            "supplier",
            (
                _pk("s_suppkey"),
                _text("s_name"),
                _text("s_address"),
                _fk("s_nationkey", "nation"),
                _text("s_phone"),
                _flt("s_acctbal", -999.99, 9999.99),
                _text("s_comment"),
            ),
            _ROWS["supplier"],
        ),
        TableSpec(
            "part",
            (
                _pk("p_partkey"),
                _text("p_name"),
                _choice("p_mfgr", *(f"Manufacturer#{i}" for i in range(1, 6))),
                _choice("p_brand", *(f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6))),
                _text("p_type"),
                _int("p_size", 1, 50),
                _choice(
                    "p_container",
                    *(
                        f"{a} {b}"
                        for a in ("SM", "LG", "MED", "JUMBO", "WRAP")
                        for b in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
                    ),
                ),
                _flt("p_retailprice", 900.0, 2100.0),
                _text("p_comment"),
            ),
            _ROWS["part"],
        ),
        TableSpec(
            "partsupp",
            (
                _fk("ps_partkey", "part"),
                _fk("ps_suppkey", "supplier"),
                _int("ps_availqty", 1, 9999),
                _flt("ps_supplycost", 1.0, 1000.0),
                _text("ps_comment"),
            ),
            _ROWS["partsupp"],
        ),
        TableSpec(
            "customer",
            (
                _pk("c_custkey"),
                _text("c_name"),
                _text("c_address"),
                _fk("c_nationkey", "nation"),
                _text("c_phone"),
                _flt("c_acctbal", -999.99, 9999.99),
                _choice(
                    "c_mktsegment",
                    "AUTOMOBILE",
                    "BUILDING",
                    "FURNITURE",
                    "HOUSEHOLD",
                    "MACHINERY",
                ),
                _text("c_comment"),
            ),
            _ROWS["customer"],
        ),
        TableSpec(
            "orders",
            (
                _pk("o_orderkey"),
                _fk("o_custkey", "customer"),
                _choice("o_orderstatus", "F", "O", "P"),
                _flt("o_totalprice", 850.0, 560000.0),
                _date("o_orderdate"),
                _choice(
                    "o_orderpriority",
                    "1-URGENT",
                    "2-HIGH",
                    "3-MEDIUM",
                    "4-NOT SPECIFIED",
                    "5-LOW",
                ),
                _text("o_clerk"),
                _int("o_shippriority", 0, 1),
                _text("o_comment"),
            ),
            _ROWS["orders"],
        ),
        TableSpec(
            "lineitem",
            (
                _fk("l_orderkey", "orders"),
                _fk("l_partkey", "part"),
                _fk("l_suppkey", "supplier"),
                _int("l_linenumber", 1, 7),
                _flt("l_quantity", 1.0, 50.0),
                _flt("l_extendedprice", 900.0, 105000.0),
                _flt("l_discount", 0.0, 0.10),
                _flt("l_tax", 0.0, 0.08),
                _choice("l_returnflag", "A", "N", "R"),
                _choice("l_linestatus", "F", "O"),
                _date("l_shipdate"),
                _date("l_commitdate"),
                _date("l_receiptdate"),
                _choice(
                    "l_shipinstruct",
                    "DELIVER IN PERSON",
                    "COLLECT COD",
                    "NONE",
                    "TAKE BACK RETURN",
                ),
                _choice("l_shipmode", "AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"),
                _text("l_comment"),
            ),
            _ROWS["lineitem"],
        ),
    ]


def instance_table(base_name: str, instance: int) -> str:
    """Instance-qualified table name, e.g. ``lineitem_3``."""
    return f"{base_name}_{instance}"


def tpch_schema(instances: int = TPCH_INSTANCES) -> List[TableSpec]:
    """Table specs for ``instances`` copies of the schema."""
    specs: List[TableSpec] = []
    for i in range(1, instances + 1):
        for base in _base_tables():
            specs.append(
                dataclasses.replace(base, name=instance_table(base.name, i))
            )
    return specs


@dataclasses.dataclass(frozen=True)
class DatasetSummary:
    """The quantities reported in Table 1 of the paper."""

    size_bytes: int
    num_tables: int
    total_tuples: int
    max_table_tuples: int
    min_table_tuples: int
    indexable_attributes: int


def dataset_summary(instances: int = TPCH_INSTANCES, page_size: int = 8192) -> DatasetSummary:
    """Compute the Table 1 characteristics for the logical data set."""
    specs = tpch_schema(instances)
    tuple_header = 28
    size = 0
    for spec in specs:
        per_page = max(1, page_size // (spec.row_width + tuple_header))
        pages = -(-spec.row_count // per_page)  # ceil division
        size += pages * page_size
    return DatasetSummary(
        size_bytes=size,
        num_tables=len(specs),
        total_tuples=sum(s.row_count for s in specs),
        max_table_tuples=max(s.row_count for s in specs),
        min_table_tuples=min(s.row_count for s in specs),
        indexable_attributes=sum(len(s.columns) for s in specs),
    )


def base_row_counts() -> Dict[str, int]:
    """Per-instance base table cardinalities (copy)."""
    return dict(_ROWS)
