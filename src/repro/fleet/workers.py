"""Multiprocess fleet: one worker process per replica, N replicas on N cores.

``FleetCoordinator(..., workers=N)`` constructs a
:class:`WorkerFleetCoordinator`: the routing brain (router, fleet
epochs, drain/restore/rebalance, metrics) stays in the parent process,
while every :class:`~repro.fleet.replica.TunerReplica` -- catalog,
tuner, breaker, gain cache -- lives in its own worker process behind a
``multiprocessing.Pipe``.  The parent never holds tuner state, so the
whole exchange is message passing over two channels:

* **downstream commands** -- per fleet epoch the parent routes the
  chunk's arrivals (routing is outcome-independent: it depends only on
  the query stream and the drain set, both parent-side), then ships
  each replica *its exact serial event sequence* -- ``process`` events
  for queries routed to it interleaved with ``tick`` events for the
  arrivals it sat out while drained.  Because per-replica decision
  state only observes that per-replica sequence, every worker's
  decision stream is bit-identical to the single-process fleet's; the
  parity test diffs the full epoch traces to prove it.
* **upstream state** -- workers reply with slim outcome records plus a
  status line (breaker state, materialized set, totals); durable state
  crosses as the very same ``repro.persist`` snapshots the serial
  fleet writes, so ``save_fleet`` on a worker fleet produces the
  standard atomic manifest and ``restore_fleet`` of it yields a serial
  coordinator.

Crash safety: replies are collected with ``poll`` + ``is_alive`` (never
a blocking ``recv``), so a worker dying mid-epoch surfaces immediately
instead of hanging the epoch barrier.  The parent trips the replica's
stand-in circuit breaker (:meth:`~repro.resilience.breaker.
CircuitBreaker.trip`), records the chunk's unacknowledged queries as
failed outcomes (or raises, under ``on_error="raise"``), and the next
reorganization drains the replica and reassigns its sticky keys through
the ordinary drain path.  A crashed replica is never ticked -- a dead
process cannot recover, so its breaker stays OPEN and the replica stays
out of the rotation for good.

Divergent-design co-tuning (``cotune=``, see :mod:`repro.fleet.cotune`)
*is* supported: the controller lives entirely in the parent, partition
routing is a dictionary lookup over the arrival stream, and the
boundary-time refinement probes and partition advisories cross the pipe
as chunk-aligned ``probe`` / ``advise`` ops -- the same point in every
replica's event sequence where the serial coordinator acts, so
serial-order parity holds with co-tuning on.

Deliberately unsupported with workers (ValueError at construction):
cost-based routing (probes replica state synchronously per arrival),
guardrail managers/advice and staged rollout (verification hooks into
the per-query path), and injected breakers/fault injectors (those
objects live in the worker; use the worker crash hook to test failure
paths).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import types
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.colt import QueryOutcome
from repro.core.config import ColtConfig
from repro.fleet.coordinator import (
    CatalogFactory,
    FleetCoordinator,
    FleetOutcome,
    FleetReorganizationResult,
    FleetRun,
)
from repro.fleet.cotune import CotuneConfig, CotuneController, resolve_advisory
from repro.fleet.replica import ReplicaHealth, ReplicaStats, TunerReplica
from repro.fleet.router import (
    DEFAULT_PROBE_BUDGET,
    CostBasedRouter,
    make_router,
)
from repro.obs.export import build_snapshot
from repro.obs.names import REPLAY_METRICS
from repro.obs.quantiles import merge_histogram_samples, summarize_sample
from repro.obs.registry import MetricsRegistry, merge_snapshots
from repro.obs.spans import merge_span_summaries
from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.sql.ast import Query
from repro.workload.phases import Workload

__all__ = ["WorkerCrash", "WorkerFleetCoordinator", "WorkerHandle"]

#: Seconds between liveness checks while waiting on a worker reply.
_POLL_INTERVAL = 0.05


def _mp_context():
    """Fork when the platform has it (fast, nothing re-imports); default
    context otherwise -- all worker arguments are picklable either way."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _slim_outcome(outcome: QueryOutcome) -> Tuple:
    """The picklable subset of a QueryOutcome (plans stay in the worker).

    A flat tuple, not a dict: replies carry one per query and the
    parent's chunk barrier deserializes them on the critical path.
    """
    return (
        outcome.index,
        outcome.execution_cost,
        outcome.whatif_calls,
        outcome.whatif_overhead,
        outcome.build_cost,
        outcome.total_cost,
        outcome.verify_calls,
        outcome.verify_overhead,
        outcome.epoch_ended,
        repr(outcome.error) if outcome.error is not None else None,
    )


def _inflate_outcome(slim: Tuple) -> QueryOutcome:
    return QueryOutcome(
        index=slim[0],
        execution_cost=slim[1],
        whatif_calls=slim[2],
        whatif_overhead=slim[3],
        build_cost=slim[4],
        total_cost=slim[5],
        plan=None,
        verify_calls=slim[6],
        verify_overhead=slim[7],
        epoch_ended=slim[8],
        reorganization=None,
        error=RuntimeError(slim[9]) if slim[9] else None,
    )


def _status(replica: TunerReplica) -> Dict:
    return {
        "breaker_state": replica.breaker.state.value,
        "queries": replica.stats.queries,
        "execution_cost": replica.stats.execution_cost,
        "total_cost": replica.stats.total_cost,
        "failed": replica.stats.failed,
        "materialized": replica.materialized_names,
        "quarantined": replica.quarantined_names,
        "config_version": replica.config_version,
    }


def _worker_main(
    conn,
    replica_id: int,
    catalog_factory: CatalogFactory,
    config: Optional[ColtConfig],
    engine: str,
    backend_factory,
    metrics_enabled: bool,
    crash_after: Optional[int],
) -> None:
    """Worker process entry point: build one replica, serve commands.

    ``crash_after`` is the failure-injection hook for crash tests: the
    process hard-exits (``os._exit``, no cleanup, pipe left dangling --
    the shape of a real OOM kill) before processing query number
    ``crash_after + 1``.
    """
    registry = MetricsRegistry(enabled=metrics_enabled)
    replica = TunerReplica(
        replica_id,
        catalog_factory(),
        config,
        registry=registry,
        engine=engine,
        backend_factory=backend_factory,
    )
    # Latency observations stay on regardless of the replica metrics
    # switch: the replay driver needs worker-side percentiles even when
    # the fleet runs with instrumentation off for throughput.
    latency = REPLAY_METRICS["replay_query_latency_seconds"].build(
        MetricsRegistry()
    )
    # Replayed streams cycle a bounded set of distinct queries; the
    # parent ships each one exactly once and then references it by key,
    # so steady-state batch messages carry small integers, not ASTs.
    queries: Dict[int, Query] = {}
    perf = time.perf_counter
    processed = 0
    while True:
        command = conn.recv()
        op = command[0]
        try:
            if op == "batch":
                events, on_error = command[1], command[2]
                outcomes: List[Tuple] = []
                for event in events:
                    if event[0] == "q":
                        if crash_after is not None and processed >= crash_after:
                            os._exit(1)
                        key, payload = event[1], event[2]
                        if payload is not None:
                            queries[key] = payload
                        t0 = perf()
                        outcome = replica.process(
                            queries[key], on_error=on_error
                        )
                        latency.observe(perf() - t0)
                        processed += 1
                        outcomes.append(_slim_outcome(outcome))
                    else:  # ("t",) -- idle tick while drained
                        replica.idle_tick()
                conn.send(("ok", outcomes, _status(replica)))
            elif op == "status":
                conn.send(("ok", None, _status(replica)))
            elif op == "clear_cache":
                replica.tuner.profiler.gain_cache.clear(reason=command[1])
                conn.send(("ok", None, _status(replica)))
            elif op == "probe":
                # Read-only what-if pricing for co-tuning refinement;
                # events reuse the batch encoding (interned keys, full
                # AST only on a query's first crossing).
                prices: List[float] = []
                for event in command[1]:
                    key, payload = event[1], event[2]
                    if payload is not None:
                        queries[key] = payload
                    prices.append(replica.probe_cost(queries[key]))
                conn.send(("ok", prices, _status(replica)))
            elif op == "advise":
                # Partition advisory in wire format; resolved against
                # this replica's own catalog (identity-keyed tuner
                # structures need its IndexDef objects).
                replica.tuner.set_advisory(
                    resolve_advisory(replica.catalog, command[1])
                )
                conn.send(("ok", None, _status(replica)))
            elif op == "latency":
                conn.send(("ok", latency.samples(), _status(replica)))
            elif op == "metrics":
                payload = {
                    "registry": registry.snapshot(),
                    "overhead": replica.tuner.dashboard.to_rows(),
                    "spans": replica.tuner.tracer.summary(),
                }
                conn.send(("ok", payload, _status(replica)))
            elif op == "trace":
                conn.send(("ok", replica.trace().to_json(), _status(replica)))
            elif op == "snapshot":
                from repro.persist import snapshot_any

                conn.send(("ok", snapshot_any(replica.tuner), _status(replica)))
            elif op == "stop":
                conn.send(("ok", None, None))
                conn.close()
                return
            else:  # pragma: no cover - protocol bug
                conn.send(("error", f"unknown worker command {op!r}"))
        except Exception as exc:  # propagate to the parent, stay alive
            conn.send(("error", f"{type(exc).__name__}: {exc}"))


class WorkerCrash(RuntimeError):
    """A worker process died while the coordinator waited on it."""


class _RemoteGainCache:
    """Stand-in for ``replica.tuner.profiler.gain_cache`` in the parent."""

    def __init__(self, handle: "WorkerHandle") -> None:
        self._handle = handle

    def clear(self, reason: str = "manual") -> None:
        if not self._handle.crashed:
            self._handle.request(("clear_cache", reason))


class _RemoteProfiler:
    def __init__(self, handle: "WorkerHandle") -> None:
        self.gain_cache = _RemoteGainCache(handle)


class _RemoteTuner:
    """The thin slice of the tuner surface fleet reorganization touches."""

    def __init__(self, handle: "WorkerHandle") -> None:
        self.profiler = _RemoteProfiler(handle)


class WorkerHandle:
    """Parent-side proxy for one replica living in a worker process.

    Duck-types the coordinator-facing surface of
    :class:`~repro.fleet.replica.TunerReplica` (``health``, ``breaker``,
    ``stats``, ``materialized_names``, ``quarantined_names``,
    ``tuner.profiler.gain_cache.clear``) from the worker's last reported
    status, so the inherited reorganization logic runs unchanged.

    The ``breaker`` attribute is a real parent-side
    :class:`~repro.resilience.breaker.CircuitBreaker` that exists solely
    to represent a *crashed* worker: :meth:`mark_crashed` trips it, it
    is never ticked, and so a dead replica reads DRAINED forever.  While
    the worker lives, health comes from the worker's own breaker state
    as of its last status message.
    """

    def __init__(self, replica_id: int, conn, process, timeout: float) -> None:
        self.replica_id = replica_id
        self.conn = conn
        self.process = process
        self.timeout = timeout
        self.crashed = False
        self.crash_breaker = CircuitBreaker()
        self.stats = ReplicaStats()
        self.tuner = _RemoteTuner(self)
        self._remote_state = BreakerState.CLOSED
        self._materialized: List[str] = []
        self._quarantined: List[str] = []
        self.config_version = 0
        self.on_crash = None  # set by the coordinator
        # Query interning over the pipe: ship each distinct query object
        # once, then reference it by key.  Strong refs guard the id()
        # fast path against id reuse (same discipline as the
        # SignatureInterner in repro.core.batching).
        self._query_keys: Dict[int, int] = {}
        self._query_refs: List[Query] = []

    def encode_query(self, query: Query) -> Tuple:
        """The batch event for ``query``: full AST on first send, a
        small interned key afterwards."""
        key = self._query_keys.get(id(query))
        if key is not None:
            return ("q", key, None)
        key = len(self._query_refs)
        self._query_keys[id(query)] = key
        self._query_refs.append(query)
        return ("q", key, query)

    # -- TunerReplica-facing surface -----------------------------------
    @property
    def health(self) -> ReplicaHealth:
        if self.crashed:
            return ReplicaHealth.DRAINED
        return ReplicaHealth.from_breaker(self._remote_state)

    @property
    def breaker(self):
        return types.SimpleNamespace(
            state=self.crash_breaker.state if self.crashed else self._remote_state
        )

    @property
    def materialized_names(self) -> List[str]:
        return list(self._materialized)

    @property
    def quarantined_names(self) -> List[str]:
        return list(self._quarantined)

    # -- protocol ------------------------------------------------------
    def apply_status(self, status: Optional[Dict]) -> None:
        """Adopt a worker-reported status dict (piggybacked on replies)."""
        if not status:
            return
        self._remote_state = BreakerState(status["breaker_state"])
        self.stats = ReplicaStats(
            queries=status["queries"],
            execution_cost=status["execution_cost"],
            total_cost=status["total_cost"],
            failed=status["failed"],
        )
        self._materialized = status["materialized"]
        self._quarantined = status["quarantined"]
        self.config_version = status["config_version"]

    def mark_crashed(self) -> None:
        """Record the worker as dead and trip the crash breaker (once)."""
        if self.crashed:
            return
        self.crashed = True
        # Failure evidence from outside the probe path: force the
        # stand-in breaker OPEN so the drain machinery sees it.
        self.crash_breaker.trip()
        if self.on_crash is not None:
            self.on_crash(self)

    def send(self, command: Tuple) -> bool:
        """Ship a command; False (after crash-marking) when the worker
        is already gone."""
        if self.crashed:
            return False
        try:
            self.conn.send(command)
            return True
        except (BrokenPipeError, OSError):
            self.mark_crashed()
            return False

    def receive(self):
        """Collect one reply without ever blocking on a dead worker.

        Polls the pipe in short intervals, checking process liveness
        between polls -- the fix for the epoch-barrier deadlock: a
        blocking ``recv`` on a crashed worker's pipe would wait forever.

        Returns the reply payload, applying the piggybacked status;
        returns None when the worker crashed (marking it) or timed out.
        """
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                if self.conn.poll(_POLL_INTERVAL):
                    kind, payload, status = self.conn.recv()
                    if kind == "error":
                        raise RuntimeError(
                            f"replica {self.replica_id} worker error: {payload}"
                        )
                    self.apply_status(status)
                    return payload
            except (EOFError, BrokenPipeError, OSError):
                self.mark_crashed()
                return None
            if not self.process.is_alive():
                self.mark_crashed()
                return None
            if time.monotonic() > deadline:
                # A live-but-wedged worker would stall every future
                # epoch; treat it exactly like a crash.
                self.process.terminate()
                self.mark_crashed()
                return None

    def request(self, command: Tuple):
        """Send a command and collect its reply (None on a dead worker)."""
        if not self.send(command):
            return None
        return self.receive()

    def close(self) -> None:
        """Ask the worker to stop, then close the pipe and join (idempotent)."""
        if not self.crashed and self.process.is_alive():
            try:
                self.conn.send(("stop",))
                self.conn.poll(1.0) and self.conn.recv()
            except (BrokenPipeError, OSError, EOFError):
                pass
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - wedged worker
            self.process.terminate()
            self.process.join(timeout=5.0)


class WorkerFleetCoordinator(FleetCoordinator):
    """A fleet whose replicas run in worker processes, one per core.

    Constructed through the front door --
    ``FleetCoordinator(..., workers=N)`` -- and presenting the same
    ``run`` / ``reorganize`` / ``metrics_snapshot`` surface.  ``workers``
    is the fleet size: one process per replica (``n_replicas`` is
    overridden).  Use as a context manager, or call :meth:`close`, to
    shut the workers down.

    Extra args over the base coordinator:
        worker_timeout: Seconds to wait for any single worker reply
            before the worker is declared dead.
        _crash_plan: Test hook -- ``{replica_id: n}`` hard-kills that
            replica's process before it serves query ``n + 1``.
    """

    is_multiprocess = True

    def __init__(
        self,
        catalog_factory: CatalogFactory,
        n_replicas: int = 3,
        config: Optional[ColtConfig] = None,
        policy: str = "affinity",
        fleet_epoch_length: int = 50,
        probe_budget: int = DEFAULT_PROBE_BUDGET,
        breakers=None,
        fault_injectors=None,
        registry: Optional[MetricsRegistry] = None,
        guardrails=None,
        advice=None,
        engine: str = "colt",
        backend_factory=None,
        cotune: Union[bool, CotuneConfig, None] = None,
        workers: int = 0,
        worker_timeout: float = 120.0,
        _crash_plan: Optional[Dict[int, int]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("WorkerFleetCoordinator requires workers >= 1")
        if guardrails is not None or advice is not None:
            raise ValueError(
                "guardrails and advice are not supported with worker "
                "processes (verification hooks into the per-query path); "
                "run the single-process fleet for guardrail deployments"
            )
        if breakers is not None or fault_injectors is not None:
            raise ValueError(
                "breakers and fault injectors live inside the worker "
                "process and cannot be injected from the parent; use the "
                "worker crash hook to exercise failure paths"
            )
        if engine not in ("colt", "bandit"):
            raise ValueError(
                f"unknown fleet engine {engine!r} (expected 'colt' or 'bandit')"
            )
        if fleet_epoch_length < 1:
            raise ValueError("fleet_epoch_length must be positive")
        self.engine = engine
        self.config = config or ColtConfig()
        self.fleet_epoch_length = fleet_epoch_length
        self.registry = registry if registry is not None else MetricsRegistry()
        self.workers = workers
        self.worker_timeout = worker_timeout
        self.rollout = None
        self._routing_catalog = catalog_factory()
        # One process per replica: `workers` IS the fleet size.
        self.router = make_router(
            policy, workers, self._routing_catalog, probe_budget=probe_budget
        )
        if isinstance(self.router, CostBasedRouter):
            raise ValueError(
                "cost-based routing probes replica state synchronously per "
                "arrival and is not supported with worker processes"
            )
        self.cotune: Optional[CotuneController] = None
        if cotune:
            # Co-tuning state lives entirely in the parent: routing is a
            # lookup, and boundary probes/advisories travel as chunk-
            # aligned worker ops, so serial-order parity is preserved.
            self.cotune = CotuneController(
                workers,
                self._routing_catalog,
                config=cotune if isinstance(cotune, CotuneConfig) else None,
                whatif_call_cost=self.config.whatif_call_cost,
            )
        self._cotune_epoch_cost = 0.0
        self._cotune_epoch_queries = 0
        ctx = _mp_context()
        self.replicas: List[WorkerHandle] = []
        crash_plan = _crash_plan or {}
        for i in range(workers):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    i,
                    catalog_factory,
                    self.config,
                    engine,
                    backend_factory,
                    self.registry.enabled,
                    crash_plan.get(i),
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self.replicas.append(
                WorkerHandle(i, parent_conn, process, worker_timeout)
            )
        self.queries_routed = 0
        self.reorganizations: List[FleetReorganizationResult] = []
        self._init_observability()
        self._m_crashes = REPLAY_METRICS["replay_worker_crashes_total"].build(
            self.registry
        )
        REPLAY_METRICS["replay_workers"].build(self.registry).set(workers)
        for handle in self.replicas:
            handle.on_crash = lambda h: self._m_crashes.inc()

    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerFleetCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop every worker process (idempotent)."""
        for handle in self.replicas:
            handle.close()

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def process_query(self, query, client_id=None, on_error="raise"):
        raise NotImplementedError(
            "the multiprocess fleet batches arrivals per fleet epoch; "
            "use run() (per-query dispatch would pay one IPC round trip "
            "per arrival)"
        )

    def run(
        self,
        workload: Union[Workload, Sequence[Query]],
        client_ids: Optional[Sequence[Optional[int]]] = None,
        on_error: str = "raise",
    ) -> FleetRun:
        """Process a whole workload across the worker fleet.

        Semantics match :meth:`FleetCoordinator.run` -- same routing,
        same fleet-epoch reorganizations, bit-identical per-replica
        decisions -- with arrivals shipped to workers one fleet epoch
        at a time.  Outcomes carry no plans (plans stay worker-side)
        and, under ``on_error="skip"``, a crashed worker's
        unacknowledged chunk queries come back as failed outcomes.
        """
        if isinstance(workload, Workload):
            queries: Sequence[Query] = workload.queries
            if client_ids is None:
                client_ids = workload.client_ids
        else:
            queries = workload

        outcomes: List[FleetOutcome] = []
        chunk: List[Tuple[int, Query, Optional[int]]] = []
        for i, query in enumerate(queries):
            chunk.append(
                (i, query, client_ids[i] if client_ids is not None else None)
            )
            if len(chunk) == self.fleet_epoch_length:
                outcomes.extend(self._run_chunk(chunk, on_error, full=True))
                chunk = []
        if chunk:
            outcomes.extend(self._run_chunk(chunk, on_error, full=False))

        return FleetRun(
            outcomes=outcomes,
            reorganizations=list(self.reorganizations),
            replica_stats=[r.stats for r in self.replicas],
            policy=self.policy,
        )

    def _run_chunk(
        self,
        chunk: List[Tuple[int, Query, Optional[int]]],
        on_error: str,
        full: bool,
    ) -> List[FleetOutcome]:
        """Route one fleet epoch's arrivals, dispatch, collect, reorganize.

        Routing happens entirely parent-side, per arrival and in
        arrival order, exactly as the serial coordinator would; each
        replica then receives its own serial-order event sequence
        (queries routed to it, interleaved with the idle ticks it would
        have received while drained), so per-replica state evolves
        identically to the single-process fleet.
        """
        events: Dict[int, List[Tuple]] = {h.replica_id: [] for h in self.replicas}
        arrivals: List[Tuple[int, int]] = []  # (global index, replica id)
        drained = set(self.router.drained)
        for index, query, client_id in chunk:
            route = self._route(query, client_id)
            events[route.replica_id].append(
                self.replicas[route.replica_id].encode_query(query)
            )
            arrivals.append((index, route.replica_id))
            self._m_routed.inc(1, replica=route.replica_id)
            self._m_probes.inc(route.probes)
            for drained_id in drained:
                if (
                    drained_id != route.replica_id
                    and not self.replicas[drained_id].crashed
                ):
                    events[drained_id].append(("t",))
            self.queries_routed += 1

        # Dispatch everything, then collect: workers run concurrently.
        dispatched: List[WorkerHandle] = []
        for handle in self.replicas:
            batch = events[handle.replica_id]
            if batch and handle.send(("batch", batch, on_error)):
                dispatched.append(handle)
        replies: Dict[int, List[Dict]] = {}
        for handle in dispatched:
            payload = handle.receive()
            if payload is not None:
                replies[handle.replica_id] = list(payload)

        fleet_outcomes: List[FleetOutcome] = []
        for index, replica_id in arrivals:
            handle = self.replicas[replica_id]
            slim_list = replies.get(replica_id)
            if slim_list:
                outcome = _inflate_outcome(slim_list.pop(0))
            else:
                # The worker died before acknowledging this chunk; no
                # reply means no per-query records, so every arrival
                # routed to it this epoch is accounted as failed.
                if on_error != "skip":
                    raise WorkerCrash(
                        f"replica {replica_id} worker crashed mid-epoch "
                        f"(query {index}); rerun with on_error='skip' to "
                        "keep serving through crashes"
                    )
                outcome = QueryOutcome(
                    index=-1,
                    execution_cost=0.0,
                    whatif_calls=0,
                    whatif_overhead=0.0,
                    build_cost=0.0,
                    total_cost=0.0,
                    plan=None,
                    error=WorkerCrash(
                        f"replica {replica_id} worker crashed mid-epoch"
                    ),
                )
                handle.stats.queries += 1
                handle.stats.failed += 1
            if self.cotune is not None:
                self._cotune_epoch_cost += outcome.execution_cost
                self._cotune_epoch_queries += 1
            fleet_outcomes.append(
                FleetOutcome(
                    index=index,
                    replica_id=replica_id,
                    outcome=outcome,
                    # The supported policies are probe-free.
                    routing_overhead=0.0,
                )
            )
        if full:
            reorg = self.reorganize()
            if fleet_outcomes:
                fleet_outcomes[-1].reorganization = reorg
                if reorg.cotune is not None:
                    # Refinement probes are charged as routing overhead
                    # on the epoch-closing arrival, as in the serial
                    # coordinator.
                    fleet_outcomes[-1].routing_overhead += (
                        reorg.cotune.probe_cost
                    )
        return fleet_outcomes

    # ------------------------------------------------------------------
    def reorganize(self) -> FleetReorganizationResult:
        """Fleet reorganization over worker-reported state.

        Refreshes each live worker's status first (batch replies
        piggyback status, so this is usually a no-op refresh), then runs
        the inherited drain/restore/rebalance logic against the handles'
        duck-typed replica surface.  Gain-cache clears on reassignment
        travel to the workers as ``clear_cache`` commands.
        """
        for handle in self.replicas:
            if not handle.crashed:
                handle.request(("status",))
        return super().reorganize()

    def _cotune_probe_costs(
        self, queries: List[Query], replica_ids: List[int]
    ) -> Dict[int, List[float]]:
        """Batched refinement probes: one ``probe`` op per replica.

        Dispatch-all-then-collect, like chunk batches, so the workers
        price their partitions concurrently.  Crashed or unresponsive
        workers are simply omitted from the cost map -- the controller
        treats missing replicas as unprobeable.
        """
        pending: List[WorkerHandle] = []
        for replica_id in replica_ids:
            handle = self.replicas[replica_id]
            if handle.crashed:
                continue
            batch = [handle.encode_query(q) for q in queries]
            if handle.send(("probe", batch)):
                pending.append(handle)
        costs: Dict[int, List[float]] = {}
        for handle in pending:
            payload = handle.receive()
            if payload is not None:
                costs[handle.replica_id] = list(payload)
        return costs

    def _cotune_advise(self, payloads: Dict[int, List]) -> None:
        """Ship partition advisories as chunk-aligned ``advise`` ops.

        The op lands between chunk batches -- the same point in each
        replica's event sequence where the serial coordinator calls
        ``set_advisory`` -- so decision parity is preserved.
        """
        pending: List[WorkerHandle] = []
        for replica_id in sorted(payloads):
            handle = self.replicas[replica_id]
            if handle.crashed:
                continue
            if handle.send(("advise", payloads[replica_id])):
                pending.append(handle)
        for handle in pending:
            handle.receive()

    # ------------------------------------------------------------------
    def replica_snapshots(self) -> List[Dict]:
        """Per-replica durable snapshots, fetched from the workers.

        Same payloads :func:`repro.persist.snapshot_any` produces in
        process, so ``save_fleet`` writes the standard atomic manifest.

        Raises:
            WorkerCrash: when any replica's worker is gone -- a partial
                fleet snapshot would restore into a silently smaller
                fleet.
        """
        snapshots: List[Dict] = []
        for handle in self.replicas:
            snap = handle.request(("snapshot",))
            if snap is None:
                raise WorkerCrash(
                    f"replica {handle.replica_id} worker is gone; cannot "
                    "snapshot a partial fleet"
                )
            snapshots.append(snap)
        return snapshots

    def replica_traces(self) -> List[Dict]:
        """Every live replica's decision trace (JSON dict), by replica id."""
        traces = []
        for handle in self.replicas:
            payload = handle.request(("trace",))
            if payload is not None:
                traces.append(json.loads(payload))
        return traces

    def latency_summary(self) -> Dict[str, Optional[float]]:
        """Fleet-wide per-query latency percentiles.

        Raw samples never cross the process boundary: each worker
        exports its ``replay_query_latency_seconds`` bucket counts and
        the parent merges them (bucket-count merging is associative --
        the obs quantile tests prove it) before reading percentiles.
        """
        samples = []
        for handle in self.replicas:
            if handle.crashed:
                continue
            payload = handle.request(("latency",))
            if payload:
                samples.extend(payload)
        if not samples:
            return summarize_sample({"count": 0, "sum": 0.0, "buckets": {}})
        return summarize_sample(merge_histogram_samples(samples))

    def metrics_snapshot(self) -> Dict:
        """Merged fleet + per-worker metrics snapshot.

        Same shape as the serial coordinator's: worker samples gain a
        ``replica`` label, overhead rows a ``replica`` key, span
        summaries merge.  Crashed workers contribute nothing beyond
        what the fleet-level registry already recorded about them.
        """
        parts = [(self.registry.snapshot(), {})]
        overhead: List[Dict] = []
        summaries = [self.tracer.summary()]
        for handle in self.replicas:
            if handle.crashed:
                continue
            payload = handle.request(("metrics",))
            if payload is None:
                continue
            parts.append(
                (payload["registry"], {"replica": str(handle.replica_id)})
            )
            for row in payload["overhead"]:
                row["replica"] = handle.replica_id
                overhead.append(row)
            summaries.append(payload["spans"])
        return build_snapshot(
            merge_snapshots(parts),
            overhead=overhead,
            spans=merge_span_summaries(summaries),
        )
