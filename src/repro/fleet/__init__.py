"""Replicated tuning fleet: per-replica COLT tuners behind a query router.

The paper tunes a single server; this package is the scale-out step.  A
fleet runs N independent :class:`~repro.fleet.replica.TunerReplica`
instances -- each with its own catalog, storage budget, and circuit
breaker -- behind a workload-aware query router.  Routing the shifting
multi-client stream by cluster affinity (or by cheap cost probes) lets
each replica's materialized set *specialize* on its slice of the
workload, which beats both a single shared tuner and blind round-robin
on total execution cost.

Components:

* ``replica``     -- one tuner + catalog + health state.
* ``router``      -- round-robin, affinity, client and cost-based
  routing policies with a self-regulating probe budget.
* ``coordinator`` -- epoch-aligned fleet reorganization: drains
  breaker-open replicas, restores recovered ones, and rebalances
  affinity routes.
* ``snapshots``   -- atomic per-replica + fleet-manifest persistence.
* ``workers``     -- the multiprocess coordinator
  (``FleetCoordinator(..., workers=N)``): one worker process per
  replica, bit-identical decisions, crash-safe epoch barriers.
* ``cotune``      -- divergent-design co-tuning
  (``FleetCoordinator(..., cotune=True)``): partitions the query
  stream by relevant-index signature, specializes each replica toward
  its partition, and refines the routing map with budgeted what-if
  probes until fleet cost converges.

See ``docs/FLEET.md`` and ``docs/COTUNE.md`` for the design discussion.
"""

from repro.fleet.coordinator import (
    FleetCoordinator,
    FleetOutcome,
    FleetReorganizationResult,
    FleetRun,
)
from repro.fleet.cotune import (
    CotuneConfig,
    CotuneController,
    CotuneReport,
    assign_partitions,
    partition_signature,
    signature_label,
)
from repro.fleet.replica import ReplicaHealth, TunerReplica
from repro.fleet.router import (
    AffinityRouter,
    CostBasedRouter,
    RoundRobinRouter,
    Router,
    make_router,
)
from repro.fleet.snapshots import (
    FLEET_MANIFEST,
    load_manifest,
    restore_fleet,
    save_fleet,
    snapshot_fleet,
)
from repro.fleet.workers import WorkerCrash, WorkerFleetCoordinator

__all__ = [
    "AffinityRouter",
    "CostBasedRouter",
    "CotuneConfig",
    "CotuneController",
    "CotuneReport",
    "FLEET_MANIFEST",
    "FleetCoordinator",
    "FleetOutcome",
    "FleetReorganizationResult",
    "FleetRun",
    "ReplicaHealth",
    "RoundRobinRouter",
    "Router",
    "TunerReplica",
    "WorkerCrash",
    "WorkerFleetCoordinator",
    "assign_partitions",
    "load_manifest",
    "make_router",
    "partition_signature",
    "restore_fleet",
    "save_fleet",
    "signature_label",
    "snapshot_fleet",
]
