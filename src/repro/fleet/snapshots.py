"""Fleet persistence: atomic per-replica snapshots plus a manifest.

Extends ``repro.persist`` from one tuner to a fleet.  Each replica's
durable state is written with the same crash-safe machinery
(:func:`repro.persist.save_json`: temp file + fsync + rename, embedded
checksum), and a *fleet manifest* (``fleet.json``) binds the set
together: it names every replica file and records the checksum of the
snapshot it expects inside, so a restore detects any torn combination
of old and new files -- the manifest is written last, and a crash
between replica writes leaves a checksum mismatch rather than a
silently inconsistent fleet.

Usage::

    save_fleet("state/", coordinator)
    ...
    coordinator = restore_fleet("state/", build_catalog, policy="affinity")
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional, Union

from repro.engine.catalog import Catalog
from repro.fleet.coordinator import CatalogFactory, FleetCoordinator
from repro.fleet.replica import TunerReplica
from repro.fleet.router import DEFAULT_PROBE_BUDGET
from repro.persist import (
    SnapshotError,
    checksum,
    load_json,
    restore_any,
    save_json,
    snapshot_any,
)

FLEET_SNAPSHOT_VERSION = 1

#: File name of the fleet manifest inside a snapshot directory.
FLEET_MANIFEST = "fleet.json"


def _replica_file(replica_id: int) -> str:
    return f"replica-{replica_id}.json"


def _collect_replica_snapshots(coordinator: FleetCoordinator) -> List[Dict]:
    """Per-replica snapshots from wherever the replicas live.

    A multiprocess coordinator exposes ``replica_snapshots()`` (workers
    serialize their own tuners and ship the payloads over the pipe);
    the in-process fleet snapshots its tuners directly.  Both produce
    the same :func:`repro.persist.snapshot_any` payloads, so one
    manifest format serves both and a worker-fleet snapshot restores
    into a serial coordinator.
    """
    fetch = getattr(coordinator, "replica_snapshots", None)
    if fetch is not None:
        return fetch()
    return [snapshot_any(r.tuner) for r in coordinator.replicas]


def snapshot_fleet(
    coordinator: FleetCoordinator,
    replica_snapshots: Optional[List[Dict]] = None,
) -> Dict:
    """Serialize a fleet's manifest to a JSON-compatible dict.

    Args:
        coordinator: The live fleet.
        replica_snapshots: Pre-computed per-replica snapshots (so
            :func:`save_fleet` checksums exactly the bytes it writes);
            computed on the fly when omitted.
    """
    if replica_snapshots is None:
        replica_snapshots = _collect_replica_snapshots(coordinator)
    entries = []
    for replica, snap in zip(coordinator.replicas, replica_snapshots):
        entries.append(
            {
                "replica_id": replica.replica_id,
                "file": _replica_file(replica.replica_id),
                "checksum": checksum(snap),
                "engine": snap.get("engine", "colt"),
                "health": replica.health.value,
                "queries": replica.stats.queries,
                "materialized": len(replica.materialized_names),
                "quarantined": replica.quarantined_names,
            }
        )
    return {
        "version": FLEET_SNAPSHOT_VERSION,
        "policy": coordinator.policy,
        "fleet_epoch_length": coordinator.fleet_epoch_length,
        "queries_routed": coordinator.queries_routed,
        "replicas": entries,
        **(
            {"rollout": coordinator.rollout.to_snapshot()}
            if coordinator.rollout is not None
            else {}
        ),
        **(
            {"cotune": coordinator.cotune.to_snapshot()}
            if getattr(coordinator, "cotune", None) is not None
            else {}
        ),
    }


def save_fleet(
    directory: Union[str, pathlib.Path], coordinator: FleetCoordinator
) -> pathlib.Path:
    """Atomically snapshot every replica plus the fleet manifest.

    Each file is written with the crash-safe envelope of
    :func:`repro.persist.save_json`; the manifest goes last so its
    checksums always describe a replica set that was fully written.

    Returns:
        The path of the written manifest.
    """
    root = pathlib.Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    snapshots = _collect_replica_snapshots(coordinator)
    for replica, snap in zip(coordinator.replicas, snapshots):
        save_json(root / _replica_file(replica.replica_id), snap)
    manifest = snapshot_fleet(coordinator, replica_snapshots=snapshots)
    path = root / FLEET_MANIFEST
    save_json(path, manifest)
    return path


def load_manifest(directory: Union[str, pathlib.Path]) -> Dict:
    """Read and structurally validate a fleet manifest.

    Raises:
        SnapshotError: if the manifest is missing, corrupt, from an
            unsupported version, or structurally malformed.
    """
    root = pathlib.Path(directory)
    manifest = load_json(root / FLEET_MANIFEST)
    if manifest.get("version") != FLEET_SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported fleet snapshot version {manifest.get('version')!r}"
        )
    replicas = manifest.get("replicas")
    if not isinstance(replicas, list) or not replicas:
        raise SnapshotError("fleet manifest lists no replicas")
    for entry in replicas:
        if not isinstance(entry, dict) or not {
            "replica_id",
            "file",
            "checksum",
        } <= set(entry):
            raise SnapshotError(f"malformed fleet manifest entry: {entry!r}")
    return manifest


def restore_fleet(
    directory: Union[str, pathlib.Path],
    catalog_factory: CatalogFactory,
    policy: Optional[str] = None,
    probe_budget: int = DEFAULT_PROBE_BUDGET,
) -> FleetCoordinator:
    """Rebuild a fleet coordinator from a snapshot directory.

    Every replica file's payload is verified against the manifest's
    recorded checksum, so a crash that replaced only some replica files
    (manifest not yet rewritten) is detected rather than restored.

    Args:
        directory: Snapshot directory written by :func:`save_fleet`.
        catalog_factory: Produces one fresh catalog per replica (plus
            one for routing).
        policy: Routing policy override; the manifest's policy is used
            when omitted.
        probe_budget: Per-epoch probe budget for cost routing.

    Raises:
        SnapshotError: on any missing/corrupt file or checksum mismatch.
    """
    root = pathlib.Path(directory)
    manifest = load_manifest(root)
    replicas: List[TunerReplica] = []
    for entry in sorted(manifest["replicas"], key=lambda e: e["replica_id"]):
        snap = load_json(root / entry["file"])
        if checksum(snap) != entry["checksum"]:
            raise SnapshotError(
                f"fleet manifest checksum mismatch for {entry['file']}: "
                "replica snapshot and manifest were not written together"
            )
        catalog: Catalog = catalog_factory()
        # Each replica file carries its own engine tag, so a fleet mixing
        # COLT and bandit replicas round-trips without coordination.
        tuner = restore_any(catalog, snap)
        replicas.append(
            TunerReplica(int(entry["replica_id"]), catalog, tuner=tuner)
        )
    rollout = None
    if "rollout" in manifest:
        from repro.guardrails.rollout import RolloutController

        rollout = RolloutController.from_snapshot(
            manifest["rollout"], replicas[0].catalog
        )
    routing_catalog = catalog_factory()
    cotune = None
    if "cotune" in manifest:
        from repro.fleet.cotune import CotuneController

        # The partition assignment (and convergence state) persists in
        # the manifest, so a restored fleet resumes co-tuning
        # mid-convergence instead of re-deriving the partition map.
        cotune = CotuneController.from_snapshot(
            manifest["cotune"], routing_catalog
        )
    return FleetCoordinator.adopt(
        replicas,
        routing_catalog=routing_catalog,
        policy=policy or str(manifest["policy"]),
        fleet_epoch_length=int(manifest["fleet_epoch_length"]),
        probe_budget=probe_budget,
        rollout=rollout,
        cotune=cotune,
    )
