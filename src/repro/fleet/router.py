"""Workload-aware query routing policies for the tuning fleet.

Four policies, all honouring the coordinator's drain set:

* **round-robin** -- the baseline: cycle over active replicas.
* **affinity** -- sticky routing by the paper's query-clustering key
  (``repro.core.clustering.cluster_key``): every query shape lands on
  one replica, so that replica's profiler sees a coherent sub-workload
  and its materialized set specializes on it.
* **client** -- sticky routing by the submitting client's stable id
  (``Workload.client_ids``), falling back to cluster affinity for
  untagged queries.
* **cost** -- route to the replica whose optimizer currently prices the
  query cheapest, measured by cheap what-if probes.  Probes are paid
  from a per-epoch budget that self-regulates like COLT's ``#WI_lim``:
  while routes keep changing the budget stays at its maximum, and once
  the routing table is stable it decays -- so steady state costs almost
  nothing.  Cached routes are invalidated when any replica's
  materialized configuration changes (the only event that can change
  the comparison).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.clustering import cluster_key
from repro.engine.catalog import Catalog
from repro.sql.ast import Query

#: Default per-epoch probe budget for cost-based routing.
DEFAULT_PROBE_BUDGET = 30
#: Floor the self-regulating probe budget never decays below.
MIN_PROBE_BUDGET = 3


@dataclasses.dataclass
class Route:
    """One routing decision.

    Attributes:
        replica_id: The chosen replica.
        probes: What-if probes spent making this decision (cost policy
            only; the coordinator charges them as routing overhead).
    """

    replica_id: int
    probes: int = 0


class Router:
    """Base router: tracks replica count, load, and the drain set.

    Args:
        n_replicas: Fleet size.

    Attributes:
        name: Policy name (used by CLI and reports).
        drained: Replica ids currently excluded from routing.
        load: Queries routed to each replica so far.
    """

    name = "base"

    def __init__(self, n_replicas: int) -> None:
        if n_replicas < 1:
            raise ValueError("n_replicas must be positive")
        self.n_replicas = n_replicas
        self.drained: set = set()
        self.load = [0] * n_replicas

    # ------------------------------------------------------------------
    def active(self) -> List[int]:
        """Replica ids currently accepting traffic.

        When every replica is drained the full fleet is returned --
        degraded service beats dropping queries.
        """
        ids = [i for i in range(self.n_replicas) if i not in self.drained]
        return ids or list(range(self.n_replicas))

    def set_drained(self, drained: Sequence[int]) -> None:
        """Install the coordinator's current drain set."""
        self.drained = set(drained)

    def roll_epoch(self) -> None:
        """Hook called at each fleet epoch boundary (default: no-op)."""

    def route(self, query: Query, client_id: Optional[int] = None) -> Route:
        """Choose a replica for one arriving query."""
        raise NotImplementedError

    def route_to(self, replica_id: int) -> Route:
        """Commit an externally decided route (co-tuning partition map).

        Bypasses the policy's own choice but still records load, so the
        policy's balancing view of unpartitioned traffic stays honest.
        """
        return self._commit(replica_id)

    # ------------------------------------------------------------------
    def _least_loaded(self) -> int:
        active = self.active()
        return min(active, key=lambda i: (self.load[i], i))

    def _commit(self, replica_id: int, probes: int = 0) -> Route:
        self.load[replica_id] += 1
        return Route(replica_id=replica_id, probes=probes)


class RoundRobinRouter(Router):
    """The baseline: cycle over active replicas in id order."""

    name = "round-robin"

    def __init__(self, n_replicas: int) -> None:
        super().__init__(n_replicas)
        self._cursor = 0

    def route(self, query: Query, client_id: Optional[int] = None) -> Route:
        """Next active replica in rotation."""
        active = self.active()
        choice = active[self._cursor % len(active)]
        self._cursor += 1
        return self._commit(choice)


class AffinityRouter(Router):
    """Sticky routing by cluster key (or client id).

    Args:
        n_replicas: Fleet size.
        catalog: Reference catalog for computing cluster keys (all
            replica catalogs are structurally identical).
        by: ``"cluster"`` keys on the query-clustering key; ``"client"``
            keys on the stable client id when present, with cluster keys
            as the fallback for untagged queries.

    Attributes:
        assignments: The sticky routing table (affinity key -> replica).
        moves: Total reassignments (drains plus load rebalancing).
        epoch_key_counts: Queries routed per affinity key in the current
            fleet epoch (the load signal :meth:`rebalance` works from).
    """

    name = "affinity"

    def __init__(
        self, n_replicas: int, catalog: Catalog, by: str = "cluster"
    ) -> None:
        if by not in ("cluster", "client"):
            raise ValueError(f"by must be 'cluster' or 'client', got {by!r}")
        super().__init__(n_replicas)
        self._catalog = catalog
        self._by = by
        if by == "client":
            self.name = "client"
        self.assignments: Dict[Hashable, int] = {}
        self.moves = 0
        self.epoch_key_counts: Dict[Hashable, int] = {}

    def affinity_key(self, query: Query, client_id: Optional[int]) -> Hashable:
        """The key a query's stickiness is based on."""
        if self._by == "client" and client_id is not None:
            return ("client", client_id)
        return cluster_key(query, self._catalog)

    def route(self, query: Query, client_id: Optional[int] = None) -> Route:
        """Sticky choice: existing assignment, else least-loaded replica."""
        key = self.affinity_key(query, client_id)
        choice = self.assignments.get(key)
        if choice is None:
            choice = self._least_loaded()
            self.assignments[key] = choice
        elif choice in self.drained:
            choice = self._least_loaded()
            self.assignments[key] = choice
            self.moves += 1
        self.epoch_key_counts[key] = self.epoch_key_counts.get(key, 0) + 1
        return self._commit(choice)

    def reassign_from(self, replica_ids: Sequence[int]) -> int:
        """Move every assignment off the given replicas (bulk drain).

        Returns:
            The number of affinity keys reassigned.
        """
        victims = set(replica_ids)
        moved = 0
        for key, replica in list(self.assignments.items()):
            if replica in victims:
                self.assignments[key] = self._least_loaded()
                moved += 1
        self.moves += moved
        return moved

    def rebalance(self) -> int:
        """Move affinity keys toward starved replicas (epoch boundary).

        Stickiness is what lets replicas specialize, so rebalancing is
        deliberately conservative: keys move only while some active
        replica carried less than half its fair share of the closing
        epoch's traffic -- the situation after a restored drain (the
        recovered replica owns no keys) or a badly skewed assignment.
        The lightest keys of the heaviest replica move first, so the
        disruption to specialized configurations is minimal.

        Returns:
            The number of affinity keys reassigned.
        """
        active = self.active()
        if len(active) < 2:
            return 0
        loads = {i: 0 for i in active}
        keys_by_replica: Dict[int, List] = {i: [] for i in active}
        for key, replica in self.assignments.items():
            if replica in loads:
                count = self.epoch_key_counts.get(key, 0)
                loads[replica] += count
                keys_by_replica[replica].append([count, key])
        total = sum(loads.values())
        if total == 0:
            return 0
        fair = total / len(active)
        moved = 0
        for _ in range(len(self.assignments)):
            light = min(active, key=lambda i: loads[i])
            heavy = max(active, key=lambda i: loads[i])
            if loads[light] >= 0.5 * fair or not keys_by_replica[heavy]:
                break
            keys_by_replica[heavy].sort(key=lambda item: item[0])
            count, key = keys_by_replica[heavy][0]
            if count == 0 or loads[heavy] - count < loads[light] + count:
                break  # nothing useful left to move without overshooting
            keys_by_replica[heavy].pop(0)
            self.assignments[key] = light
            loads[heavy] -= count
            loads[light] += count
            keys_by_replica[light].append([count, key])
            moved += 1
        self.moves += moved
        return moved

    def roll_epoch(self) -> None:
        """Reset the per-epoch key load counters."""
        self.epoch_key_counts = {}


class CostBasedRouter(Router):
    """Route each query shape to the replica that prices it cheapest.

    Args:
        n_replicas: Fleet size.
        catalog: Reference catalog for cluster keys.
        probe_budget: Maximum what-if probes per fleet epoch.

    Attributes:
        probes_used: Probes spent in the current fleet epoch.
        probe_budget: The budget currently granted (self-regulating).
        route_changes: Probe outcomes that changed an existing route in
            the current epoch (drives the next epoch's budget).
    """

    name = "cost"

    def __init__(
        self,
        n_replicas: int,
        catalog: Catalog,
        probe_budget: int = DEFAULT_PROBE_BUDGET,
    ) -> None:
        super().__init__(n_replicas)
        self._catalog = catalog
        self._replicas: Sequence = ()
        self.max_probe_budget = probe_budget
        self.probe_budget = probe_budget
        self.probes_used = 0
        self.route_changes = 0
        # key -> (replica_id, per-replica config-version vector at probe
        # time); a version bump anywhere invalidates the entry.
        self._cache: Dict[Hashable, Tuple[int, Tuple[int, ...]]] = {}

    def bind(self, replicas: Sequence) -> None:
        """Attach the live replicas probed for costs (coordinator wiring)."""
        if len(replicas) != self.n_replicas:
            raise ValueError("replica count does not match router size")
        self._replicas = replicas

    # ------------------------------------------------------------------
    def _versions(self) -> Tuple[int, ...]:
        return tuple(r.config_version for r in self._replicas)

    def route(self, query: Query, client_id: Optional[int] = None) -> Route:
        """Cheapest replica by probe, cached per query shape.

        Falls back to the stale cached route (then to the least-loaded
        replica) once the epoch's probe budget is spent.
        """
        if not self._replicas:
            raise RuntimeError("CostBasedRouter.route before bind()")
        key = cluster_key(query, self._catalog)
        versions = self._versions()
        cached = self._cache.get(key)
        if cached is not None and cached[1] == versions and cached[0] not in self.drained:
            return self._commit(cached[0])

        active = [i for i in range(self.n_replicas) if i not in self.drained]
        if not active:
            # The whole fleet is drained.  Degraded service still
            # routes (least-loaded fallback), but a drained replica
            # must never be probed -- route blind, spend nothing.
            return self._commit(self._least_loaded())
        if self.probes_used + len(active) > self.probe_budget:
            # Budget exhausted: reuse the stale route if it is still
            # routable, otherwise balance blindly.
            if cached is not None and cached[0] not in self.drained:
                return self._commit(cached[0])
            return self._commit(self._least_loaded())

        costs = {i: self._replicas[i].probe_cost(query) for i in active}
        self.probes_used += len(active)
        choice = min(active, key=lambda i: (costs[i], i))
        if cached is not None and cached[0] != choice:
            self.route_changes += 1
        self._cache[key] = (choice, versions)
        return self._commit(choice, probes=len(active))

    def roll_epoch(self) -> None:
        """Re-grant the probe budget for the next fleet epoch.

        Self-regulation mirrors COLT's re-budgeting: any route change
        this epoch means the fleet is still differentiating, so the full
        budget is granted; a quiet epoch halves it toward a small floor.
        """
        if self.route_changes > 0:
            self.probe_budget = self.max_probe_budget
        else:
            self.probe_budget = max(MIN_PROBE_BUDGET, self.probe_budget // 2)
        self.probes_used = 0
        self.route_changes = 0


def make_router(
    policy: str,
    n_replicas: int,
    catalog: Catalog,
    probe_budget: int = DEFAULT_PROBE_BUDGET,
) -> Router:
    """Build a router by policy name.

    Args:
        policy: ``"round-robin"``, ``"affinity"``, ``"client"`` or
            ``"cost"``.
        n_replicas: Fleet size.
        catalog: Reference catalog for key computation / probing.
        probe_budget: Per-epoch probe budget (cost policy only).

    Raises:
        ValueError: for an unknown policy name.
    """
    if policy == "round-robin":
        return RoundRobinRouter(n_replicas)
    if policy == "affinity":
        return AffinityRouter(n_replicas, catalog, by="cluster")
    if policy == "client":
        return AffinityRouter(n_replicas, catalog, by="client")
    if policy == "cost":
        return CostBasedRouter(n_replicas, catalog, probe_budget=probe_budget)
    raise ValueError(
        f"unknown routing policy {policy!r}; expected one of "
        "'round-robin', 'affinity', 'client', 'cost'"
    )
