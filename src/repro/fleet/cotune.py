"""Divergent-design fleet co-tuning: partition -> specialize -> route.

The fleet layer (PR 2) lets replica configurations drift apart, but the
Jaccard divergence it reports is passive: nothing *steers* the fleet
toward a divergent design.  This module closes that loop with a
cluster-and-tune iteration run at fleet epoch boundaries:

1. **Partition** the observed query stream by similarity over
   *relevant-index signatures* -- the ``(table, column)`` footprint a
   query's selection and join predicates expose to the candidate space,
   i.e. the pure predicate of ``Optimizer.relevant_config`` applied to
   the full index space.  Signatures are aggregated per epoch (order
   within an epoch cannot matter) and assigned to replicas greedily by
   Jaccard similarity against each replica's partition profile, with a
   load penalty so no replica starves.  Existing assignments are sticky:
   the greedy pass only places *new* signatures and signatures whose
   replica left the active set.
2. **Specialize** each replica toward its partition: at every boundary
   the controller pushes advisory soft preferences (the partition's
   index footprint, weighted) down to the replica's tuner, where they
   are merged with guardrail constraints (pins and bans always win --
   see :func:`repro.guardrails.synthesis.synthesize_constraints`) and
   bias the knapsack; the same footprint seeds the replica's candidate
   tracker so freshly migrated partitions are minable immediately.
3. **Route** every arriving query to its partition's replica (a pure
   dictionary lookup, overriding the base router mid-epoch), and
   *refine* the partition map with budgeted what-if probes at
   boundaries: one stored representative query per signature is priced
   on every active replica through ``replica.probe_cost`` (the existing
   ``Backend.get_cost`` path), and a signature migrates only when the
   cheapest replica undercuts its current home by more than the
   **hysteresis band** -- drift cannot thrash the map.  The probe
   budget self-regulates like COLT's ``#WI_lim``: migrations re-grant
   the full budget, quiet boundaries halve it toward a floor.
4. **Iterate** until fleet-wide observed cost stops improving:
   ``patience`` boundaries without improvement freeze refinement
   (convergence); a new signature, a drain, or a cost regression past
   the hysteresis band resumes it.

Everything here is deterministic -- no RNG, no hash-order dependence --
so a co-tuned fleet reproduces bit-identically across processes, which
is what lets the multiprocess fleet (PR 9) co-tune under the
serial-order parity contract: the controller lives in the parent,
routes parent-side, and probes/advises only at chunk boundaries.
"""

from __future__ import annotations

import dataclasses
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.batching import SignatureInterner
from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.fleet.router import DEFAULT_PROBE_BUDGET, MIN_PROBE_BUDGET
from repro.sql.ast import Query

__all__ = [
    "CotuneConfig",
    "CotuneController",
    "CotuneReport",
    "assign_partitions",
    "partition_signature",
    "resolve_advisory",
    "signature_label",
]

#: One partition signature: the (table, column) pairs a query exposes.
Signature = FrozenSet[Tuple[str, str]]

#: Similarity bonus for a signature's previous home (greedy pass only).
_STICKINESS = 0.25


def partition_signature(query: Query, catalog: Catalog) -> Signature:
    """The relevant-index footprint of one bound query.

    The pure predicate of ``Optimizer.relevant_config`` applied to the
    *full* candidate space: every ``(table, column)`` referenced by a
    selection or join predicate, restricted to the query's own tables
    and to columns the catalog can index.  Queries over unknown tables
    (or with no indexable references) yield the empty signature, which
    the controller never partitions -- they fall through to the base
    router.
    """
    tables = set(query.tables)
    pairs = set()
    for ref in query.selection_columns() + query.join_columns():
        if ref.table not in tables or not catalog.has_table(ref.table):
            continue
        tdef = catalog.table(ref.table)
        if not tdef.has_column(ref.column):
            continue
        if not tdef.column(ref.column).indexable:
            continue
        pairs.add((ref.table, ref.column))
    return frozenset(pairs)


def signature_label(signature: Signature) -> str:
    """Stable human/JSON-readable form of a signature."""
    return "+".join(f"{t}.{c}" for t, c in sorted(signature))


def _canon(signature: Signature) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(signature))


def assign_partitions(
    weights: Dict[Signature, float],
    previous: Dict[Signature, int],
    active: Sequence[int],
) -> Dict[Signature, int]:
    """Deterministically partition signatures across active replicas.

    Existing assignments whose replica is still active are kept
    verbatim (stickiness is what lets replicas specialize; migration of
    *assigned* signatures is the probe-refinement loop's job, gated by
    hysteresis).  Unplaced signatures -- new ones, and those orphaned
    by a drain -- are placed greedily in descending weight order onto
    the replica with the most similar partition profile (Jaccard over
    the union of assigned footprints), with a stickiness bonus for the
    previous home and a load penalty keeping partitions balanced.
    Finally, while any active replica owns no signature and another
    owns at least two, the lightest signature of the most-loaded
    replica moves over -- no partition is ever empty while its replica
    is active (given enough signatures to go around).

    Pure and deterministic: output depends only on the (aggregated)
    ``weights``, ``previous`` and ``active`` values -- never on dict
    iteration order, hash seed, or any RNG -- and every input signature
    appears in the output exactly once (reassignment is a permutation).
    """
    ids = sorted(set(active))
    if not ids:
        return {}
    assignment: Dict[Signature, int] = {}
    profiles: Dict[int, set] = {r: set() for r in ids}
    loads: Dict[int, float] = {r: 0.0 for r in ids}
    order = sorted(weights, key=lambda s: (-weights[s], _canon(s)))

    pending: List[Signature] = []
    for sig in order:
        home = previous.get(sig)
        if home in profiles:
            assignment[sig] = home
            profiles[home] |= sig
            loads[home] += weights[sig]
        else:
            pending.append(sig)

    total = sum(weights.values())
    fair = total / len(ids) if total > 0 else 1.0
    for sig in pending:
        best_id = ids[0]
        best_score = None
        for r in ids:
            profile = profiles[r]
            union = len(profile | sig)
            similarity = len(profile & sig) / union if union else 0.0
            score = similarity - loads[r] / fair
            if previous.get(sig) == r:
                score += _STICKINESS
            if best_score is None or score > best_score:
                best_score = score
                best_id = r
        assignment[sig] = best_id
        profiles[best_id] |= sig
        loads[best_id] += weights[sig]

    # Forced fill: an active replica with an empty partition would sit
    # idle under partition routing.  Move the lightest signature off
    # the most-populated replica until every active replica owns one
    # (or signatures run out).
    counts = {r: 0 for r in ids}
    for r in assignment.values():
        counts[r] += 1
    while True:
        empty = [r for r in ids if counts[r] == 0]
        donors = [r for r in ids if counts[r] >= 2]
        if not empty or not donors:
            break
        target = empty[0]
        donor = max(donors, key=lambda r: (counts[r], -r))
        movable = [s for s, r in assignment.items() if r == donor]
        sig = min(movable, key=lambda s: (weights[s], _canon(s)))
        assignment[sig] = target
        counts[donor] -= 1
        counts[target] += 1
    return assignment


def resolve_advisory(
    catalog: Catalog, payload: Sequence[Tuple[str, Sequence[str], float]]
) -> List[Tuple[IndexDef, float]]:
    """Resolve a serialized advisory payload against a replica catalog.

    Payload entries are ``(table, columns, weight)`` -- the wire format
    the worker fleet ships over the pipe (``IndexDef`` objects must be
    resolved against each replica's *own* catalog so identity-keyed
    structures behave).  Entries naming unknown tables or columns are
    skipped: advice is advisory.
    """
    resolved: List[Tuple[IndexDef, float]] = []
    for table, columns, weight in payload:
        if not catalog.has_table(table):
            continue
        tdef = catalog.table(table)
        if not all(tdef.has_column(c) for c in columns):
            continue
        if len(columns) == 1:
            index = catalog.index_for(table, columns[0])
        else:
            index = catalog.composite_index_for(table, list(columns))
        resolved.append((index, weight))
    return resolved


@dataclasses.dataclass(frozen=True)
class CotuneConfig:
    """Knobs of the co-tuning loop.

    Attributes:
        hysteresis: Relative cost improvement a migration must clear --
            a signature moves only when the cheapest other replica
            prices its representative below ``current * (1 -
            hysteresis)``.  The anti-thrash band.
        probe_budget: Maximum what-if probes per fleet boundary for
            partition refinement (self-regulating, ``#WI_lim``-style).
        min_probe_budget: Floor the self-regulating budget never decays
            below.
        patience: Fleet boundaries without observed-cost improvement
            before refinement freezes (convergence).
        preference_weight: Knapsack value multiplier advised for a
            partition's index footprint (> 1 biases toward it).
        decay: Per-boundary exponential decay of signature weights --
            how fast the partitioner forgets a shifted-away workload.
    """

    hysteresis: float = 0.1
    probe_budget: int = DEFAULT_PROBE_BUDGET
    min_probe_budget: int = MIN_PROBE_BUDGET
    patience: int = 3
    preference_weight: float = 2.0
    decay: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.hysteresis < 1.0:
            raise ValueError("hysteresis must be in [0, 1)")
        if self.probe_budget < 1:
            raise ValueError("probe_budget must be positive")
        if not 1 <= self.min_probe_budget <= self.probe_budget:
            raise ValueError(
                "min_probe_budget must be in [1, probe_budget]"
            )
        if self.patience < 1:
            raise ValueError("patience must be positive")
        if self.preference_weight <= 0.0:
            raise ValueError("preference_weight must be positive")
        if not 0.0 <= self.decay < 1.0:
            raise ValueError("decay must be in [0, 1)")

    def to_dict(self) -> Dict:
        """JSON-compatible serialization."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "CotuneConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


@dataclasses.dataclass
class CotuneReport:
    """What the co-tuning pass did at one fleet boundary.

    Attributes:
        epoch: 0-based co-tuning boundary number.
        signatures: Partition signatures currently tracked.
        partitions: Active replicas owning at least one signature.
        assigned: Signatures newly placed by the greedy pass (new or
            orphaned by a drain).
        migrations: Signatures moved by probe refinement (hysteresis
            cleared).
        forced_moves: Signatures moved off inactive replicas or by the
            empty-partition fill.
        probes: What-if probes spent on refinement this boundary.
        probe_cost: Cost units charged for those probes.
        probe_budget: Budget granted for the *next* boundary.
        cost_per_query: Mean observed fleet cost per query this epoch
            (the convergence objective; 0 when the epoch saw none).
        cost_delta: Relative change of ``cost_per_query`` against the
            previous boundary (negative is improvement; 0 on the
            first).
        converged: Whether refinement is frozen after this boundary.
        partition_sizes: ``replica id -> signatures assigned``.
    """

    epoch: int
    signatures: int
    partitions: int
    assigned: int
    migrations: int
    forced_moves: int
    probes: int
    probe_cost: float
    probe_budget: int
    cost_per_query: float
    cost_delta: float
    converged: bool
    partition_sizes: Dict[int, int]


class CotuneController:
    """The fleet's partition-specialize-route state machine.

    Owned by the coordinator (serial or multiprocess); all state lives
    parent-side.  Per arriving query the coordinator calls
    :meth:`admit`; per fleet boundary it calls :meth:`end_epoch` with
    the active replica set, the epoch's observed cost, and a probe
    callback, then pushes :meth:`advisory_payloads` down to the
    replicas.

    Args:
        n_replicas: Fleet size.
        catalog: The routing catalog (signature computation only).
        config: Co-tuning knobs.
        whatif_call_cost: Cost units charged per refinement probe.
    """

    def __init__(
        self,
        n_replicas: int,
        catalog: Catalog,
        config: Optional[CotuneConfig] = None,
        whatif_call_cost: float = 1.0,
    ) -> None:
        if n_replicas < 1:
            raise ValueError("n_replicas must be positive")
        self.n_replicas = n_replicas
        self.config = config or CotuneConfig()
        self._catalog = catalog
        self._whatif_call_cost = whatif_call_cost
        self._interner = SignatureInterner()
        self._psig_memo: Dict[int, Signature] = {}
        self.assignment: Dict[Signature, int] = {}
        self.weights: Dict[Signature, float] = {}
        self._epoch_counts: Dict[Signature, int] = {}
        self._representatives: Dict[Signature, Query] = {}
        # sig -> {replica: count}: where the base policy routed not-yet
        # partitioned signatures this epoch (greedy placement hints).
        self._fallback: Dict[Signature, Dict[int, int]] = {}
        self.probe_budget = self.config.probe_budget
        self.converged = False
        self._stall = 0
        self._best_cost: Optional[float] = None
        self._last_cost: Optional[float] = None
        self.epochs = 0
        self.migrations_total = 0
        self.history: List[Dict] = []

    # ------------------------------------------------------------------
    def signature_of(self, query: Query) -> Signature:
        """Memoized partition signature of one query."""
        _, sig_index = self._interner.signature_index(query)
        cached = self._psig_memo.get(sig_index)
        if cached is None:
            cached = partition_signature(query, self._catalog)
            self._psig_memo[sig_index] = cached
        return cached

    def admit(self, query: Query, drained: Iterable[int]) -> Optional[int]:
        """Observe one arrival; return its partition's replica, if any.

        Updates the signature's epoch count and representative, then
        answers the routing question: the assigned replica when the
        signature is partitioned and its replica is not drained, else
        None (the caller falls back to the base router).  A dictionary
        lookup -- no probes are ever spent mid-epoch.
        """
        signature = self.signature_of(query)
        if not signature:
            return None
        self._epoch_counts[signature] = (
            self._epoch_counts.get(signature, 0) + 1
        )
        self._representatives[signature] = query
        replica = self.assignment.get(signature)
        if replica is None or replica in set(drained):
            return None
        return replica

    def note_fallback(self, query: Query, replica_id: int) -> None:
        """Record where the base policy routed an unpartitioned query.

        The greedy pass uses these counts as placement hints: a new
        signature is first placed where the incumbent policy already
        sent most of its traffic, so enabling co-tuning inherits the
        running layout (and its accumulated profiling) instead of
        reshuffling it -- migration away from the inherited home is
        probe refinement's job, gated by hysteresis.
        """
        signature = self.signature_of(query)
        if not signature:
            return
        per_replica = self._fallback.setdefault(signature, {})
        per_replica[replica_id] = per_replica.get(replica_id, 0) + 1

    # ------------------------------------------------------------------
    def end_epoch(
        self,
        active: Sequence[int],
        cost_per_query: float,
        epoch_queries: int,
        probe_costs: Callable[
            [List[Query], List[int]], Dict[int, List[float]]
        ],
    ) -> CotuneReport:
        """Run one partition-specialize-route iteration.

        Args:
            active: Replica ids currently accepting traffic.
            cost_per_query: Mean observed fleet cost per query over the
                closing epoch (the convergence objective).
            epoch_queries: Arrivals the closing epoch saw (0 skips the
                convergence update -- an operator-triggered boundary).
            probe_costs: Callback pricing a batch of representative
                queries on a set of replicas; returns ``{replica id:
                [cost per query]}`` and may omit unreachable replicas.

        Returns:
            The boundary's :class:`CotuneReport` (also appended to
            :attr:`history` in serialized form).
        """
        cfg = self.config
        active_ids = sorted(set(active)) or list(range(self.n_replicas))

        # 1. Fold the epoch's counts into the decayed weights.
        new_signatures = False
        for sig in list(self.weights):
            self.weights[sig] *= cfg.decay
        for sig, count in self._epoch_counts.items():
            if sig not in self.assignment:
                new_signatures = True
            self.weights[sig] = self.weights.get(sig, 0.0) + float(count)
        self._epoch_counts = {}
        # Evict signatures that decayed to noise and are unassigned --
        # assigned ones keep their partition until a drain or probe
        # moves them (stickiness).
        for sig in sorted(self.weights, key=_canon):
            if self.weights[sig] < 1e-9 and sig not in self.assignment:
                del self.weights[sig]
                self._representatives.pop(sig, None)

        # 2. Resume refinement on drift: fresh work, a drain that
        # orphaned a partition, or an observed-cost regression past the
        # hysteresis band all un-freeze a converged controller.
        orphaned = any(
            r not in active_ids for r in self.assignment.values()
        )
        regressed = (
            self._best_cost is not None
            and epoch_queries > 0
            and cost_per_query
            > self._best_cost * (1.0 + cfg.hysteresis)
        )
        if self.converged and (new_signatures or orphaned or regressed):
            self.converged = False
            self._stall = 0

        # 3. Partition: keep sticky assignments, place the rest where
        # the base policy was already sending them (fallback hints),
        # falling back to greedy similarity placement.
        before = dict(self.assignment)
        hinted = dict(self.assignment)
        for sig in sorted(self._fallback, key=_canon):
            if sig in hinted or sig not in self.weights:
                continue
            counts = self._fallback[sig]
            hint = max(
                sorted(counts), key=lambda r: counts[r]
            )  # ties break toward the smallest replica id
            if hint in active_ids:
                hinted[sig] = hint
        self._fallback = {}
        self.assignment = assign_partitions(
            self.weights, hinted, active_ids
        )
        forced_moves = sum(
            1
            for sig, r in self.assignment.items()
            if sig in before and before[sig] != r
        )
        assigned = sum(1 for sig in self.assignment if sig not in before)

        # 4. Refine: budgeted what-if probes over representatives, in
        # descending weight order, with the hysteresis band deciding
        # migration.  Frozen controllers spend nothing.
        probes = 0
        migrations = 0
        if not self.converged and len(active_ids) > 1:
            order = [
                sig
                for sig in sorted(
                    self.assignment,
                    key=lambda s: (-self.weights.get(s, 0.0), _canon(s)),
                )
                if sig in self._representatives
            ]
            batch: List[Signature] = []
            for sig in order:
                if (probes + (len(batch) + 1) * len(active_ids)
                        > self.probe_budget):
                    break
                batch.append(sig)
            if batch:
                queries = [self._representatives[sig] for sig in batch]
                costs = probe_costs(queries, active_ids)
                probed = sorted(costs)
                probes = len(batch) * len(probed)
                for i, sig in enumerate(batch):
                    home = self.assignment[sig]
                    if home not in costs:
                        continue
                    current = costs[home][i]
                    best_id, best_cost = home, current
                    for r in probed:
                        if costs[r][i] < best_cost:
                            best_id, best_cost = r, costs[r][i]
                    if (
                        best_id != home
                        and best_cost
                        < current * (1.0 - cfg.hysteresis)
                    ):
                        self.assignment[sig] = best_id
                        migrations += 1

        # 5. Convergence: freeze after `patience` boundaries without
        # fleet-cost improvement.
        cost_delta = 0.0
        if epoch_queries > 0:
            if self._last_cost is not None and self._last_cost > 0.0:
                cost_delta = (
                    cost_per_query - self._last_cost
                ) / self._last_cost
            self._last_cost = cost_per_query
            if (
                self._best_cost is None
                or cost_per_query < self._best_cost * (1.0 - 1e-9)
            ):
                self._best_cost = cost_per_query
                self._stall = 0
            else:
                self._stall += 1
            if self._stall >= cfg.patience and not migrations:
                self.converged = True

        # 6. Self-regulating probe budget, mirroring #WI_lim: movement
        # re-grants the maximum, quiet boundaries halve toward a floor.
        if migrations or assigned or forced_moves:
            self.probe_budget = cfg.probe_budget
        else:
            self.probe_budget = max(
                cfg.min_probe_budget, self.probe_budget // 2
            )

        self.migrations_total += migrations + forced_moves
        partition_sizes: Dict[int, int] = {r: 0 for r in active_ids}
        for r in self.assignment.values():
            partition_sizes[r] = partition_sizes.get(r, 0) + 1
        report = CotuneReport(
            epoch=self.epochs,
            signatures=len(self.assignment),
            partitions=sum(1 for n in partition_sizes.values() if n > 0),
            assigned=assigned,
            migrations=migrations,
            forced_moves=forced_moves,
            probes=probes,
            probe_cost=probes * self._whatif_call_cost,
            probe_budget=self.probe_budget,
            cost_per_query=cost_per_query,
            cost_delta=cost_delta,
            converged=self.converged,
            partition_sizes=partition_sizes,
        )
        self.epochs += 1
        self.history.append(
            {
                "epoch": report.epoch,
                "assignment": {
                    signature_label(sig): r
                    for sig, r in sorted(
                        self.assignment.items(), key=lambda kv: _canon(kv[0])
                    )
                },
                "assigned": assigned,
                "migrations": migrations,
                "forced_moves": forced_moves,
                "probes": probes,
                "cost_per_query": cost_per_query,
                "converged": self.converged,
            }
        )
        return report

    def set_whatif_call_cost(self, cost: float) -> None:
        """Install the fleet config's per-probe charge."""
        self._whatif_call_cost = cost

    # ------------------------------------------------------------------
    def advisory_payloads(
        self,
    ) -> Dict[int, List[Tuple[str, List[str], float]]]:
        """Per-replica advisory preferences for the current partition.

        Each replica is advised to prefer (knapsack value multiplier
        ``preference_weight``) the single-column indexes covering its
        partition's footprint.  The wire format is
        ``(table, [column], weight)`` tuples -- resolved against each
        replica's own catalog by :func:`resolve_advisory` -- sorted for
        cross-process determinism.  Replicas whose partition is empty
        get an explicit empty list, clearing stale advice.
        """
        footprints: Dict[int, set] = {}
        for sig, replica in self.assignment.items():
            footprints.setdefault(replica, set()).update(sig)
        payloads: Dict[int, List[Tuple[str, List[str], float]]] = {}
        for replica in range(self.n_replicas):
            pairs = sorted(footprints.get(replica, ()))
            payloads[replica] = [
                (table, [column], self.config.preference_weight)
                for table, column in pairs
            ]
        return payloads

    def partition_of(self, replica_id: int) -> List[str]:
        """Signature labels currently assigned to one replica."""
        return sorted(
            signature_label(sig)
            for sig, r in self.assignment.items()
            if r == replica_id
        )

    # ------------------------------------------------------------------
    def to_snapshot(self) -> Dict:
        """JSON-compatible serialization of the co-tuning state.

        Representatives (live query objects) do not serialize; after a
        restore, refinement resumes as new representatives are
        observed.
        """
        return {
            "config": self.config.to_dict(),
            "n_replicas": self.n_replicas,
            "assignment": [
                [list(map(list, _canon(sig))), replica]
                for sig, replica in sorted(
                    self.assignment.items(), key=lambda kv: _canon(kv[0])
                )
            ],
            "weights": [
                [list(map(list, _canon(sig))), weight]
                for sig, weight in sorted(
                    self.weights.items(), key=lambda kv: _canon(kv[0])
                )
            ],
            "probe_budget": self.probe_budget,
            "converged": self.converged,
            "stall": self._stall,
            "best_cost": self._best_cost,
            "last_cost": self._last_cost,
            "epochs": self.epochs,
            "migrations_total": self.migrations_total,
            "history": list(self.history),
        }

    @classmethod
    def from_snapshot(
        cls, data: Dict, catalog: Catalog
    ) -> "CotuneController":
        """Rebuild a controller from :meth:`to_snapshot` output."""

        def _sig(pairs) -> Signature:
            return frozenset((t, c) for t, c in pairs)

        controller = cls(
            int(data["n_replicas"]),
            catalog,
            config=CotuneConfig.from_dict(data["config"]),
        )
        controller.assignment = {
            _sig(pairs): int(replica)
            for pairs, replica in data.get("assignment", [])
        }
        controller.weights = {
            _sig(pairs): float(weight)
            for pairs, weight in data.get("weights", [])
        }
        controller.probe_budget = int(data["probe_budget"])
        controller.converged = bool(data["converged"])
        controller._stall = int(data["stall"])
        controller._best_cost = data.get("best_cost")
        controller._last_cost = data.get("last_cost")
        controller.epochs = int(data["epochs"])
        controller.migrations_total = int(data["migrations_total"])
        controller.history = list(data.get("history", []))
        return controller
