"""The fleet coordinator: routing, epoch-aligned reorganization, drains.

The coordinator owns N :class:`~repro.fleet.replica.TunerReplica`
instances and a :class:`~repro.fleet.router.Router`.  Per arriving
query it routes, processes, and charges any routing probes as overhead;
every ``fleet_epoch_length`` queries it runs a *fleet reorganization*,
the scale-out analogue of COLT's per-epoch self-organization:

* replicas whose profiling breaker tripped OPEN are **drained** --
  removed from routing with their sticky assignments redistributed, so
  no arriving query is ever dropped;
* recovered replicas (breaker HALF_OPEN after cooldown, then CLOSED)
  are **restored** to the rotation;
* the cost router's probe budget is re-granted (self-regulating, like
  ``#WI_lim``);
* a configuration-divergence measure over the replicas' materialized
  sets is reported, making specialization observable.

Each boundary yields a :class:`FleetReorganizationResult`, the fleet's
ledger record mirroring the single-tuner
:class:`~repro.core.self_organizer.ReorganizationResult`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.colt import QueryOutcome
from repro.core.config import ColtConfig
from repro.engine.catalog import Catalog
from repro.fleet.cotune import (
    CotuneConfig,
    CotuneController,
    CotuneReport,
    resolve_advisory,
)
from repro.fleet.replica import ReplicaHealth, ReplicaStats, TunerReplica
from repro.guardrails.advice import AdviceBook
from repro.guardrails.manager import GuardrailConfig, GuardrailManager
from repro.guardrails.rollout import RolloutController, RolloutSummary
from repro.obs.export import build_snapshot
from repro.obs.names import (
    BANDIT_METRICS,
    COTUNE_METRICS,
    FLEET_METRICS,
    GUARDRAIL_METRICS,
    PROFILER_METRICS,
    REPLAY_METRICS,
    TUNER_METRICS,
)
from repro.obs.registry import MetricsRegistry, merge_snapshots
from repro.obs.spans import SpanTracer, merge_span_summaries
from repro.fleet.router import (
    DEFAULT_PROBE_BUDGET,
    AffinityRouter,
    CostBasedRouter,
    Router,
    make_router,
)
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultInjector
from repro.sql.ast import Query
from repro.workload.phases import Workload

CatalogFactory = Callable[[], Catalog]


@dataclasses.dataclass
class ReplicaStatus:
    """One replica's line in a fleet reorganization report.

    Attributes:
        replica_id: The replica.
        health: Health value (``"healthy"``/``"degraded"``/``"drained"``).
        breaker_state: The underlying breaker state.
        queries: Queries processed so far.
        materialized: Number of materialized indexes.
        quarantined: Names of indexes this replica's guardrails hold in
            quarantine or on parole (empty without guardrails).
    """

    replica_id: int
    health: str
    breaker_state: str
    queries: int
    materialized: int
    quarantined: List[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class FleetReorganizationResult:
    """Decisions taken at one fleet epoch boundary.

    Attributes:
        epoch: 0-based fleet epoch number.
        drained: Replicas newly drained at this boundary.
        restored: Replicas newly restored to the rotation.
        drained_total: All replicas excluded from routing after this
            boundary.
        moved_assignments: Sticky affinity keys redistributed away from
            drained replicas.
        rebalanced: Sticky affinity keys moved toward starved replicas
            (e.g. a just-restored replica that owns no assignments).
        probe_budget: The cost router's probe budget granted for the
            next fleet epoch (0 for probe-free policies).
        divergence: Mean pairwise Jaccard *distance* between the
            replicas' materialized sets -- 0 when every replica holds
            the same indexes, 1 when all sets are disjoint.
        replicas: Per-replica status lines.
        rollout: What the staged-rollout pass did at this boundary
            (None when the fleet runs without guardrails).
        cotune: What the co-tuning pass did at this boundary (None when
            the fleet runs without co-tuning).
    """

    epoch: int
    drained: List[int]
    restored: List[int]
    drained_total: List[int]
    moved_assignments: int
    rebalanced: int
    probe_budget: int
    divergence: float
    replicas: List[ReplicaStatus]
    rollout: Optional[RolloutSummary] = None
    cotune: Optional[CotuneReport] = None


@dataclasses.dataclass
class FleetOutcome:
    """Ledger record for one query routed through the fleet.

    Attributes:
        index: 0-based position in the fleet's arrival stream.
        replica_id: The replica that served the query.
        outcome: The replica tuner's own ledger record.
        routing_overhead: Cost units charged for routing probes spent on
            this query (cost policy only).
        reorganization: The fleet reorganization this query's arrival
            closed, if any.
    """

    index: int
    replica_id: int
    outcome: QueryOutcome
    routing_overhead: float = 0.0
    reorganization: Optional[FleetReorganizationResult] = None

    @property
    def total_cost(self) -> float:
        """The query's replica-side total cost plus routing overhead."""
        return self.outcome.total_cost + self.routing_overhead


@dataclasses.dataclass
class FleetRun:
    """Complete ledger of one fleet simulation.

    Attributes:
        outcomes: Per-query fleet records, in arrival order.
        reorganizations: Every fleet epoch boundary's decisions.
        replica_stats: Per-replica running totals at the end of the run.
        policy: The routing policy name.
    """

    outcomes: List[FleetOutcome]
    reorganizations: List[FleetReorganizationResult]
    replica_stats: List[ReplicaStats]
    policy: str

    @property
    def execution_cost(self) -> float:
        """Workload-wide execution cost (the figure-of-merit compared
        across routing policies)."""
        return sum(o.outcome.execution_cost for o in self.outcomes)

    @property
    def routing_overhead(self) -> float:
        """Workload-wide cost charged for routing probes."""
        return sum(o.routing_overhead for o in self.outcomes)

    @property
    def total_cost(self) -> float:
        """Execution plus all tuning and routing overheads."""
        return sum(o.total_cost for o in self.outcomes)

    @property
    def queries_per_replica(self) -> List[int]:
        """How many queries each replica served."""
        return [s.queries for s in self.replica_stats]

    @property
    def failed_queries(self) -> int:
        """Queries recorded as failed (skip-mode error handling)."""
        return sum(s.failed for s in self.replica_stats)


class FleetCoordinator:
    """Runs a replicated tuning fleet behind one routing front door.

    Args:
        catalog_factory: Zero-argument callable producing a fresh,
            structurally identical catalog per replica (plus one for
            the router's key computation).
        n_replicas: Fleet size.
        config: Per-replica tuning parameters; ``storage_budget_pages``
            is each replica's *own* budget.
        policy: Routing policy name (see :func:`~repro.fleet.router.
            make_router`).
        fleet_epoch_length: Queries between fleet reorganizations.
        probe_budget: Per-epoch probe budget for cost-based routing.
        breakers: Optional per-replica circuit breakers (tests inject
            tight thresholds).
        fault_injectors: Optional per-replica fault injectors; entries
            may be None.
        registry: Fleet-level metrics registry; defaults to a fresh
            enabled one.  Each replica additionally gets its own
            registry (same enabled state) so
            :meth:`metrics_snapshot` can merge them under a
            ``replica`` label.
        guardrails: Optional :class:`~repro.guardrails.manager.
            GuardrailConfig`; when given, every replica gets its own
            guardrail manager (observed-cost verification, quarantine)
            and the coordinator stages new indexes through a canary
            replica before fleet-wide promotion.
        advice: Optional DBA advice applied to every replica's
            guardrail manager (requires ``guardrails``).
        engine: Tuning engine every replica runs -- ``"colt"``
            (default) or ``"bandit"``; a ``ColtConfig`` is still what
            parameterizes the fleet (bandit replicas derive a matched
            :class:`~repro.bandit.config.BanditConfig` from it).
        backend_factory: Optional callable ``catalog -> Backend``
            giving each replica its DBMS backend (defaults to the local
            in-python engine).
        cotune: Enables divergent-design co-tuning (see
            :mod:`repro.fleet.cotune`): truthy turns the
            partition-specialize-route loop on, a
            :class:`~repro.fleet.cotune.CotuneConfig` additionally
            supplies its knobs.  Off (the default) leaves the fleet
            bit-identical to a coordinator without the feature.
        workers: When positive, replicas run in that many worker
            *processes* instead of in-process: construction returns a
            :class:`~repro.fleet.workers.WorkerFleetCoordinator` (same
            run/reorganize surface, N cores, bit-identical decisions --
            see ``repro/fleet/workers.py`` for the supported subset of
            fleet features).  0 (the default) keeps everything in this
            process.

    Attributes:
        tracer: Span tracer timing fleet reorganizations.
        rollout: The staged-rollout controller (None without
            guardrails).
    """

    def __new__(cls, *args, workers: int = 0, **kwargs):
        # `FleetCoordinator(..., workers=N)` is the documented front
        # door for the multiprocess fleet; dispatch to the worker
        # subclass here so callers never import it directly.  Plain
        # construction (and `adopt`'s bare `cls.__new__(cls)`) is
        # untouched, as is any explicit subclass.
        if workers and cls is FleetCoordinator:
            from repro.fleet.workers import WorkerFleetCoordinator

            return super().__new__(WorkerFleetCoordinator)
        return super().__new__(cls)

    def __init__(
        self,
        catalog_factory: CatalogFactory,
        n_replicas: int = 3,
        config: Optional[ColtConfig] = None,
        policy: str = "affinity",
        fleet_epoch_length: int = 50,
        probe_budget: int = DEFAULT_PROBE_BUDGET,
        breakers: Optional[Sequence[Optional[CircuitBreaker]]] = None,
        fault_injectors: Optional[Sequence[Optional[FaultInjector]]] = None,
        registry: Optional[MetricsRegistry] = None,
        guardrails: Optional[GuardrailConfig] = None,
        advice: Optional[AdviceBook] = None,
        engine: str = "colt",
        backend_factory=None,
        cotune: Union[bool, CotuneConfig, None] = None,
        workers: int = 0,
    ) -> None:
        if workers:
            # Reaching here with workers > 0 means __new__ did not
            # dispatch (an explicit subclass): fail loudly rather than
            # silently running single-process.
            raise ValueError(
                "workers > 0 requires the multiprocess coordinator; "
                "construct FleetCoordinator(..., workers=N) directly or "
                "use repro.fleet.workers.WorkerFleetCoordinator"
            )
        if n_replicas < 1:
            raise ValueError("n_replicas must be positive")
        if fleet_epoch_length < 1:
            raise ValueError("fleet_epoch_length must be positive")
        if advice is not None and guardrails is None:
            raise ValueError("advice requires guardrails to be enabled")
        if engine not in ("colt", "bandit"):
            raise ValueError(
                f"unknown fleet engine {engine!r} (expected 'colt' or 'bandit')"
            )
        self.engine = engine
        self.config = config or ColtConfig()
        self.fleet_epoch_length = fleet_epoch_length
        self.registry = registry if registry is not None else MetricsRegistry()
        self.replicas: List[TunerReplica] = []
        for i in range(n_replicas):
            breaker = breakers[i] if breakers else None
            injector = fault_injectors[i] if fault_injectors else None
            manager = (
                GuardrailManager(config=guardrails, advice=advice)
                if guardrails is not None
                else None
            )
            self.replicas.append(
                TunerReplica(
                    i,
                    catalog_factory(),
                    self.config,
                    breaker=breaker,
                    fault_injector=injector,
                    registry=MetricsRegistry(enabled=self.registry.enabled),
                    guardrails=manager,
                    engine=engine,
                    backend_factory=backend_factory,
                )
            )
        self.rollout: Optional[RolloutController] = None
        if guardrails is not None:
            baseline = [
                ix for r in self.replicas for ix in r.tuner.materialized_set
            ]
            self.rollout = RolloutController(baseline=baseline)
        self._routing_catalog = catalog_factory()
        self.router: Router = make_router(
            policy, n_replicas, self._routing_catalog, probe_budget=probe_budget
        )
        if isinstance(self.router, CostBasedRouter):
            self.router.bind(self.replicas)
        self.cotune: Optional[CotuneController] = None
        if cotune:
            self.cotune = CotuneController(
                n_replicas,
                self._routing_catalog,
                config=cotune if isinstance(cotune, CotuneConfig) else None,
                whatif_call_cost=self.config.whatif_call_cost,
            )
        self._cotune_epoch_cost = 0.0
        self._cotune_epoch_queries = 0
        self.queries_routed = 0
        self.reorganizations: List[FleetReorganizationResult] = []
        self._init_observability()

    # ------------------------------------------------------------------
    @classmethod
    def adopt(
        cls,
        replicas: Sequence[TunerReplica],
        routing_catalog: Catalog,
        policy: str = "affinity",
        fleet_epoch_length: int = 50,
        probe_budget: int = DEFAULT_PROBE_BUDGET,
        rollout: Optional[RolloutController] = None,
        cotune: Optional[CotuneController] = None,
    ) -> "FleetCoordinator":
        """Build a coordinator around pre-existing replicas.

        Used when restoring a fleet from snapshots: the replicas (and
        their tuners) already exist, so no catalogs are constructed.
        ``rollout`` re-attaches a restored staged-rollout controller,
        ``cotune`` a restored co-tuning controller (resuming the
        partition map mid-convergence).
        """
        coordinator = cls.__new__(cls)
        coordinator.engine = replicas[0].engine
        coordinator.config = replicas[0].tuner.config
        coordinator.fleet_epoch_length = fleet_epoch_length
        coordinator.replicas = list(replicas)
        coordinator.rollout = rollout
        coordinator._routing_catalog = routing_catalog
        coordinator.router = make_router(
            policy, len(replicas), routing_catalog, probe_budget=probe_budget
        )
        if isinstance(coordinator.router, CostBasedRouter):
            coordinator.router.bind(coordinator.replicas)
        coordinator.cotune = cotune
        if cotune is not None:
            cotune.set_whatif_call_cost(coordinator.config.whatif_call_cost)
        coordinator._cotune_epoch_cost = 0.0
        coordinator._cotune_epoch_queries = 0
        coordinator.queries_routed = 0
        coordinator.reorganizations = []
        coordinator.registry = MetricsRegistry(
            enabled=replicas[0].tuner.registry.enabled
        )
        coordinator._init_observability()
        return coordinator

    # ------------------------------------------------------------------
    def _init_observability(self) -> None:
        """Build the fleet-level collectors and span tracer."""
        self.tracer = SpanTracer(enabled=self.registry.enabled)
        self._m_routed = FLEET_METRICS["fleet_queries_routed_total"].build(self.registry)
        self._m_probes = FLEET_METRICS["fleet_routing_probes_total"].build(self.registry)
        self._m_routing_cost = FLEET_METRICS["fleet_routing_overhead_cost_total"].build(
            self.registry
        )
        self._m_reorgs = FLEET_METRICS["fleet_reorganizations_total"].build(self.registry)
        self._m_drains = FLEET_METRICS["fleet_drain_events_total"].build(self.registry)
        self._m_restores = FLEET_METRICS["fleet_restore_events_total"].build(self.registry)
        self._m_moved = FLEET_METRICS["fleet_moved_assignments_total"].build(self.registry)
        self._m_rebalanced = FLEET_METRICS["fleet_rebalanced_keys_total"].build(self.registry)
        self._m_probe_budget = FLEET_METRICS["fleet_probe_budget"].build(self.registry)
        self._m_divergence = FLEET_METRICS["fleet_config_divergence"].build(self.registry)
        self._m_health = FLEET_METRICS["fleet_replica_health"].build(self.registry)
        self._m_rollouts_started = FLEET_METRICS["fleet_rollouts_started_total"].build(
            self.registry
        )
        self._m_rollouts_promoted = FLEET_METRICS[
            "fleet_rollouts_promoted_total"
        ].build(self.registry)
        self._m_rollouts_rolled_back = FLEET_METRICS[
            "fleet_rollouts_rolled_back_total"
        ].build(self.registry)
        self._m_canary_reassignments = FLEET_METRICS[
            "fleet_canary_reassignments_total"
        ].build(self.registry)
        self._m_active_canaries = FLEET_METRICS["fleet_active_canaries"].build(
            self.registry
        )
        self._m_cotune_sigs = COTUNE_METRICS["cotune_signatures"].build(self.registry)
        self._m_cotune_parts = COTUNE_METRICS["cotune_partitions"].build(self.registry)
        self._m_cotune_migrations = COTUNE_METRICS["cotune_migrations_total"].build(
            self.registry
        )
        self._m_cotune_probes = COTUNE_METRICS["cotune_probes_total"].build(
            self.registry
        )
        self._m_cotune_probe_cost = COTUNE_METRICS[
            "cotune_probe_overhead_cost_total"
        ].build(self.registry)
        self._m_cotune_cost_delta = COTUNE_METRICS["cotune_fleet_cost_delta"].build(
            self.registry
        )
        self._m_cotune_divergence = COTUNE_METRICS[
            "cotune_divergence_objective"
        ].build(self.registry)
        self._m_cotune_converged = COTUNE_METRICS["cotune_converged"].build(
            self.registry
        )
        # Guardrail families are registered fleet-level regardless of
        # whether guardrails are enabled, so the export contract (every
        # CATALOG family present) holds for every fleet configuration;
        # per-replica managers register the same families on their own
        # registries and the samples merge under the replica label.
        for spec in GUARDRAIL_METRICS.values():
            spec.build(self.registry)
        # Likewise for the engine-specific families (COLT's and the
        # bandit's) and the throughput serving path's: a fleet may mix
        # engines, run single-process or with workers, but the export
        # contract stays configuration-agnostic either way.
        for catalog in (
            TUNER_METRICS,
            PROFILER_METRICS,
            BANDIT_METRICS,
            REPLAY_METRICS,
        ):
            for spec in catalog.values():
                spec.build(self.registry)
        self._sync_health()

    _HEALTH_VALUES = {
        ReplicaHealth.HEALTHY: 0,
        ReplicaHealth.DEGRADED: 1,
        ReplicaHealth.DRAINED: 2,
    }

    def _sync_health(self) -> None:
        for r in self.replicas:
            self._m_health.set(self._HEALTH_VALUES[r.health], replica=r.replica_id)

    # ------------------------------------------------------------------
    @property
    def policy(self) -> str:
        """The routing policy name."""
        return self.router.name

    @property
    def metrics(self) -> MetricsRegistry:
        """The fleet-level metrics registry (replicas have their own)."""
        return self.registry

    def metrics_snapshot(self) -> Dict:
        """Merged snapshot: fleet families plus per-replica families.

        Replica samples gain a ``replica`` label; overhead rows gain a
        ``replica`` key; span summaries merge (counts add, maxima max).
        """
        parts = [(self.registry.snapshot(), {})]
        overhead: List[Dict] = []
        summaries = [self.tracer.summary()]
        for r in self.replicas:
            parts.append(
                (r.tuner.registry.snapshot(), {"replica": str(r.replica_id)})
            )
            for row in r.tuner.dashboard.to_rows():
                row["replica"] = r.replica_id
                overhead.append(row)
            summaries.append(r.tuner.tracer.summary())
        return build_snapshot(
            merge_snapshots(parts),
            overhead=overhead,
            spans=merge_span_summaries(summaries),
        )

    def _route(self, query: Query, client_id: Optional[int]):
        """Routing front door: partition map first, base policy second.

        With co-tuning enabled every arrival is offered to the
        controller -- a pure dictionary lookup over the partition
        assignment (never a probe).  Unpartitioned queries (empty
        signature, unassigned signature, or a drained target) fall
        through to the configured routing policy unchanged; with
        co-tuning off this *is* the configured policy, bit for bit.
        """
        if self.cotune is not None:
            choice = self.cotune.admit(query, self.router.drained)
            if choice is not None:
                return self.router.route_to(choice)
            route = self.router.route(query, client_id)
            self.cotune.note_fallback(query, route.replica_id)
            return route
        return self.router.route(query, client_id)

    def process_query(
        self,
        query: Query,
        client_id: Optional[int] = None,
        on_error: str = "raise",
    ) -> FleetOutcome:
        """Route and process one arriving query.

        Args:
            query: The bound query.
            client_id: Stable submitting-client id, when the workload
                carries one (used by client-affinity routing).
            on_error: ``"raise"`` propagates replica failures;
                ``"skip"`` records them as failed outcomes and keeps
                the fleet serving.

        Returns:
            The fleet ledger record; when this arrival closes a fleet
            epoch it carries the boundary's reorganization report.
        """
        route = self._route(query, client_id)
        replica = self.replicas[route.replica_id]
        outcome = replica.process(query, on_error=on_error)
        # Drained replicas see no queries; advance their breaker clocks
        # so cooldown (measured in arrivals, as everywhere) elapses.
        for drained_id in self.router.drained:
            if drained_id != route.replica_id:
                self.replicas[drained_id].idle_tick()

        self.queries_routed += 1
        if self.cotune is not None:
            self._cotune_epoch_cost += outcome.execution_cost
            self._cotune_epoch_queries += 1
        routing_overhead = route.probes * self.config.whatif_call_cost
        self._m_routed.inc(1, replica=route.replica_id)
        self._m_probes.inc(route.probes)
        self._m_routing_cost.inc(routing_overhead)
        reorg: Optional[FleetReorganizationResult] = None
        if self.queries_routed % self.fleet_epoch_length == 0:
            reorg = self.reorganize()
            if reorg.cotune is not None:
                # Refinement probes spent at the boundary are charged
                # as routing overhead on the epoch-closing arrival.
                routing_overhead += reorg.cotune.probe_cost
        return FleetOutcome(
            index=self.queries_routed - 1,
            replica_id=route.replica_id,
            outcome=outcome,
            routing_overhead=routing_overhead,
            reorganization=reorg,
        )

    def run(
        self,
        workload: Union[Workload, Sequence[Query]],
        client_ids: Optional[Sequence[Optional[int]]] = None,
        on_error: str = "raise",
    ) -> FleetRun:
        """Process a whole workload, returning the complete fleet ledger.

        Args:
            workload: A :class:`~repro.workload.phases.Workload` (its
                ``client_ids`` tags are used automatically) or a bare
                query sequence.
            client_ids: Explicit per-query client tags overriding the
                workload's own.
            on_error: Forwarded to :meth:`process_query`.
        """
        if isinstance(workload, Workload):
            queries: Sequence[Query] = workload.queries
            if client_ids is None:
                client_ids = workload.client_ids
        else:
            queries = workload
        outcomes = [
            self.process_query(
                query,
                client_id=client_ids[i] if client_ids is not None else None,
                on_error=on_error,
            )
            for i, query in enumerate(queries)
        ]
        return FleetRun(
            outcomes=outcomes,
            reorganizations=list(self.reorganizations),
            replica_stats=[r.stats for r in self.replicas],
            policy=self.policy,
        )

    # ------------------------------------------------------------------
    def reorganize(self) -> FleetReorganizationResult:
        """Run one fleet reorganization (drain/restore/rebalance).

        Called automatically at fleet epoch boundaries; callable
        directly by tests and by operators reacting to an incident.
        """
        with self.tracer.span("fleet_reorganize", epoch=len(self.reorganizations)):
            previously = set(self.router.drained)
            unhealthy = {
                r.replica_id
                for r in self.replicas
                if r.health is ReplicaHealth.DRAINED
            }
            drained = sorted(unhealthy - previously)
            restored = sorted(previously - unhealthy)
            self.router.set_drained(sorted(unhealthy))

            moved = 0
            rebalanced = 0
            if isinstance(self.router, AffinityRouter):
                if drained:
                    moved = self.router.reassign_from(drained)
                rebalanced = self.router.rebalance()
            cotune_report: Optional[CotuneReport] = None
            if self.cotune is not None:
                # Partition reassignment rides the same boundary as
                # drain/rebalance: the active set already excludes this
                # boundary's drains, so orphaned partitions move here.
                cotune_report = self._run_cotune(
                    [
                        r.replica_id
                        for r in self.replicas
                        if r.replica_id not in unhealthy
                    ]
                )
            partition_moves = (
                cotune_report.migrations + cotune_report.forced_moves
                if cotune_report is not None
                else 0
            )
            if moved or rebalanced or partition_moves:
                # Moved affinity keys change which queries each replica
                # profiles next; per-replica gain caches keyed on the
                # old assignment mix are cleared rather than aged out.
                for replica in self.replicas:
                    replica.tuner.profiler.gain_cache.clear(reason="rebalance")
            self.router.roll_epoch()
            probe_budget = (
                self.router.probe_budget
                if isinstance(self.router, CostBasedRouter)
                else 0
            )

            rollout_summary: Optional[RolloutSummary] = None
            if self.rollout is not None:
                # Staged rollout runs after drains are known: a drained
                # canary hands its duty to a healthy holder here.
                rollout_summary = self.rollout.reconcile(self.replicas)
                self._m_rollouts_started.inc(len(rollout_summary.started))
                self._m_rollouts_promoted.inc(len(rollout_summary.promoted))
                self._m_rollouts_rolled_back.inc(
                    len(rollout_summary.rolled_back)
                )
                self._m_canary_reassignments.inc(rollout_summary.reassigned)
                self._m_active_canaries.set(rollout_summary.active_canaries)

        divergence = self.configuration_divergence()
        if self.cotune is not None:
            # With co-tuning on, divergence is the steering objective
            # rather than a passive report; mirror it under the cotune
            # family so dashboards can track the loop in one place.
            self._m_cotune_divergence.set(divergence)
        self._m_reorgs.inc()
        self._m_drains.inc(len(drained))
        self._m_restores.inc(len(restored))
        self._m_moved.inc(moved)
        self._m_rebalanced.inc(rebalanced)
        self._m_probe_budget.set(probe_budget)
        self._m_divergence.set(divergence)
        self._sync_health()

        result = FleetReorganizationResult(
            epoch=len(self.reorganizations),
            drained=drained,
            restored=restored,
            drained_total=sorted(unhealthy),
            moved_assignments=moved,
            rebalanced=rebalanced,
            probe_budget=probe_budget,
            divergence=divergence,
            replicas=[
                ReplicaStatus(
                    replica_id=r.replica_id,
                    health=r.health.value,
                    breaker_state=r.breaker.state.value,
                    queries=r.stats.queries,
                    materialized=len(r.materialized_names),
                    quarantined=r.quarantined_names,
                )
                for r in self.replicas
            ],
            rollout=rollout_summary,
            cotune=cotune_report,
        )
        self.reorganizations.append(result)
        return result

    # ------------------------------------------------------------------
    def _run_cotune(self, active: List[int]) -> CotuneReport:
        """One co-tuning boundary: partition, refine, advise, account."""
        epoch_cost = self._cotune_epoch_cost
        epoch_queries = self._cotune_epoch_queries
        self._cotune_epoch_cost = 0.0
        self._cotune_epoch_queries = 0
        report = self.cotune.end_epoch(
            active=active,
            cost_per_query=(
                epoch_cost / epoch_queries if epoch_queries else 0.0
            ),
            epoch_queries=epoch_queries,
            probe_costs=self._cotune_probe_costs,
        )
        self._cotune_advise(self.cotune.advisory_payloads())
        self._m_cotune_sigs.set(report.signatures)
        self._m_cotune_parts.set(report.partitions)
        self._m_cotune_migrations.inc(report.migrations + report.forced_moves)
        self._m_cotune_probes.inc(report.probes)
        self._m_cotune_probe_cost.inc(report.probe_cost)
        self._m_cotune_cost_delta.set(report.cost_delta)
        self._m_cotune_converged.set(1 if report.converged else 0)
        self._m_probes.inc(report.probes)
        self._m_routing_cost.inc(report.probe_cost)
        return report

    def _cotune_probe_costs(
        self, queries: List[Query], replica_ids: List[int]
    ) -> Dict[int, List[float]]:
        """Price representative queries on each replica (refinement).

        The multiprocess coordinator overrides this with a batched
        pipe round-trip; replicas never see a tuning-state mutation
        either way (``probe_cost`` is the read-only what-if path).
        """
        return {
            replica_id: [
                self.replicas[replica_id].probe_cost(q) for q in queries
            ]
            for replica_id in replica_ids
        }

    def _cotune_advise(self, payloads: Dict[int, List]) -> None:
        """Push per-replica partition advisories down to the tuners.

        Payloads are in wire format (``(table, [columns], weight)``)
        and resolved against each replica's own catalog so identity-
        keyed tuner structures see that replica's ``IndexDef`` objects.
        The multiprocess coordinator overrides this with an ``advise``
        op at the chunk boundary -- the same point in every replica's
        event sequence, preserving serial-order parity.
        """
        for replica_id in sorted(payloads):
            replica = self.replicas[replica_id]
            resolved = resolve_advisory(replica.catalog, payloads[replica_id])
            replica.tuner.set_advisory(resolved)

    def configuration_divergence(self) -> float:
        """Mean pairwise Jaccard distance between materialized sets.

        0.0 means every replica materialized the same indexes (no
        specialization -- what round-robin converges to); values toward
        1.0 mean the replicas partitioned the index space.
        """
        sets = [frozenset(r.materialized_names) for r in self.replicas]
        pairs = [
            (a, b) for i, a in enumerate(sets) for b in sets[i + 1 :]
        ]
        if not pairs:
            return 0.0
        distances = []
        for a, b in pairs:
            union = a | b
            if not union:
                distances.append(0.0)
            else:
                distances.append(1.0 - len(a & b) / len(union))
        return sum(distances) / len(distances)
