"""One fleet member: a tuning engine wrapped with identity and health.

A :class:`TunerReplica` owns its catalog and tuner -- a
:class:`~repro.core.colt.ColtTuner` or, with ``engine="bandit"``, a
:class:`~repro.bandit.tuner.BanditTuner` (replicas must evolve
independent materialized sets), carries a per-replica storage budget,
and derives a
fleet-facing health state from the tuner's existing profiling circuit
breaker (``repro.resilience``): a breaker that trips OPEN marks the
replica DRAINED so the router stops sending it traffic, HALF_OPEN maps
to DEGRADED (traffic allowed, profiling trickles), and CLOSED is
HEALTHY.

The replica also keeps the per-epoch :class:`~repro.bench.tracing.
EpochTrace` ledger so fleet benchmarks can dump machine-readable traces
of every replica's decisions.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional

from repro.bench.tracing import EpochTrace, TunerTrace
from repro.core.colt import ColtTuner, QueryOutcome
from repro.core.config import ColtConfig
from repro.engine.catalog import Catalog
from repro.obs.registry import MetricsRegistry
from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.faults import FaultInjector
from repro.sql.ast import Query


class ReplicaHealth(enum.Enum):
    """Fleet-facing health state, derived from the profiling breaker."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DRAINED = "drained"

    @classmethod
    def from_breaker(cls, state: BreakerState) -> "ReplicaHealth":
        """Map a breaker state onto the fleet's health vocabulary."""
        if state is BreakerState.OPEN:
            return cls.DRAINED
        if state is BreakerState.HALF_OPEN:
            return cls.DEGRADED
        return cls.HEALTHY


@dataclasses.dataclass
class ReplicaStats:
    """Running totals for one replica's slice of the fleet stream.

    Attributes:
        queries: Queries processed by this replica.
        execution_cost: Sum of execution costs of those queries.
        total_cost: Execution plus tuning overheads (what-if, builds).
        failed: Queries that errored and were recorded in skip mode.
    """

    queries: int = 0
    execution_cost: float = 0.0
    total_cost: float = 0.0
    failed: int = 0


class TunerReplica:
    """One independently tuned replica of the database.

    Args:
        replica_id: Dense fleet-wide id (0-based).
        catalog: This replica's private catalog.
        config: Tuning parameters; ``storage_budget_pages`` is the
            *per-replica* budget.
        breaker: Optional pre-built circuit breaker (tests inject one
            with tight thresholds); defaults to the tuner's standard.
        fault_injector: Optional fault injector wired into this
            replica's tuner only (chaos tests drain a single replica).
        tuner: Pre-built tuner to adopt instead of constructing one
            (used when restoring a fleet from snapshots).
        registry: Metrics registry for this replica's tuner (the
            coordinator hands each replica its own so snapshots can be
            merged under a ``replica`` label); ignored when ``tuner``
            is pre-built.
        guardrails: Optional per-replica guardrail manager forwarded to
            the tuner (verification, quarantine, rollout bans); ignored
            when ``tuner`` is pre-built.
        engine: Tuning engine to construct -- ``"colt"`` (default) or
            ``"bandit"`` (a :class:`~repro.bandit.tuner.BanditTuner`
            with a :meth:`~repro.bandit.config.BanditConfig.from_colt`
            configuration); ignored when ``tuner`` is pre-built.
        backend_factory: Optional callable ``catalog -> Backend``
            building the replica tuner's DBMS backend (defaults to the
            local in-python engine); ignored when ``tuner`` is
            pre-built.
    """

    def __init__(
        self,
        replica_id: int,
        catalog: Catalog,
        config: Optional[ColtConfig] = None,
        breaker: Optional[CircuitBreaker] = None,
        fault_injector: Optional[FaultInjector] = None,
        tuner: Optional[ColtTuner] = None,
        registry: Optional[MetricsRegistry] = None,
        guardrails=None,
        engine: str = "colt",
        backend_factory=None,
    ) -> None:
        self.replica_id = replica_id
        self.catalog = catalog
        backend = backend_factory(catalog) if backend_factory is not None else None
        if tuner is None:
            if engine == "bandit":
                # Deferred import keeps the fleet importable without
                # pulling the bandit stack for pure-COLT deployments.
                from repro.bandit.config import BanditConfig
                from repro.bandit.tuner import BanditTuner

                tuner = BanditTuner(
                    catalog,
                    BanditConfig.from_colt(config or ColtConfig()),
                    breaker=breaker,
                    fault_injector=fault_injector,
                    registry=registry,
                    guardrails=guardrails,
                    backend=backend,
                )
            elif engine == "colt":
                tuner = ColtTuner(
                    catalog,
                    config,
                    breaker=breaker,
                    fault_injector=fault_injector,
                    registry=registry,
                    guardrails=guardrails,
                    backend=backend,
                )
            else:
                raise ValueError(
                    f"unknown replica engine {engine!r} "
                    "(expected 'colt' or 'bandit')"
                )
        self.tuner = tuner
        self.stats = ReplicaStats()
        self.config_version = 0
        self._epochs: List[EpochTrace] = []
        self._epoch_exec = 0.0
        self._epoch_total = 0.0
        self._epoch_whatif = 0

    # ------------------------------------------------------------------
    @property
    def engine(self) -> str:
        """The tuning engine this replica runs (``"colt"``/``"bandit"``)."""
        from repro.bandit.tuner import BanditTuner

        return "bandit" if isinstance(self.tuner, BanditTuner) else "colt"

    @property
    def health(self) -> ReplicaHealth:
        """Current health, read off the profiling circuit breaker."""
        return ReplicaHealth.from_breaker(self.tuner.profiler.breaker.state)

    @property
    def breaker(self) -> CircuitBreaker:
        """The replica's profiling circuit breaker."""
        return self.tuner.profiler.breaker

    @property
    def materialized_names(self) -> List[str]:
        """Names of the replica's currently materialized indexes."""
        return [ix.name for ix in self.tuner.materialized_set]

    @property
    def quarantined_names(self) -> List[str]:
        """Names of indexes this replica's guardrails hold in quarantine
        (or on parole); empty when no guardrail manager is attached."""
        manager = getattr(self.tuner, "guardrails", None)
        if manager is None:
            return []
        return [entry.index.name for entry in manager.quarantine.entries]

    # ------------------------------------------------------------------
    def process(self, query: Query, on_error: str = "raise") -> QueryOutcome:
        """Process one routed query through this replica's tuner.

        Args:
            query: The bound query.
            on_error: Forwarded to :meth:`~repro.core.colt.ColtTuner.run`
                -- ``"skip"`` records a failed query as a zero-cost
                outcome carrying its exception instead of raising.
        """
        outcome = self.tuner.run([query], on_error=on_error)[0]
        self._account(outcome)
        return outcome

    def probe_cost(self, query: Query) -> float:
        """Cheap what-if probe: this replica's cost for the query.

        Optimizes under the replica's *current* materialized set without
        touching tuning state -- the router's cost signal.  The router
        charges the probe against its per-epoch budget; this method only
        measures.
        """
        backend = getattr(self.tuner, "backend", None)
        if backend is not None:
            return backend.get_cost(query)
        return self.tuner.optimizer.optimize(query).cost

    def idle_tick(self) -> None:
        """Advance the breaker clock while this replica receives no traffic.

        A drained replica sees no queries, so its breaker would never
        reach the HALF_OPEN cooldown on its own; the coordinator ticks
        it once per fleet arrival instead (queries as clock, as
        everywhere else in the simulation).
        """
        self.tuner.profiler.breaker.tick()

    # ------------------------------------------------------------------
    def trace(self) -> TunerTrace:
        """The replica's per-epoch decision trace so far."""
        return TunerTrace(epochs=list(self._epochs), config=self.tuner.config)

    def _account(self, outcome: QueryOutcome) -> None:
        self.stats.queries += 1
        self.stats.execution_cost += outcome.execution_cost
        self.stats.total_cost += outcome.total_cost
        if outcome.failed:
            self.stats.failed += 1
        self._epoch_exec += outcome.execution_cost
        self._epoch_total += outcome.total_cost
        self._epoch_whatif += outcome.whatif_calls
        if outcome.epoch_ended and outcome.reorganization is not None:
            reorg = outcome.reorganization
            if reorg.materialize or reorg.drop:
                self.config_version += 1
            self._epochs.append(
                EpochTrace(
                    epoch=len(self._epochs),
                    execution_cost=self._epoch_exec,
                    total_cost=self._epoch_total,
                    whatif_used=self._epoch_whatif,
                    budget_granted=reorg.whatif_budget,
                    improvement_ratio=reorg.improvement_ratio,
                    materialized=self.materialized_names,
                    added=[ix.name for ix in reorg.materialize],
                    dropped=[ix.name for ix in reorg.drop],
                    hot=[ix.name for ix in reorg.hot],
                )
            )
            self._epoch_exec = self._epoch_total = 0.0
            self._epoch_whatif = 0
