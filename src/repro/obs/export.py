"""Exporters: Prometheus text exposition and JSON snapshots.

Both render the JSON-compatible snapshot dicts produced by
:meth:`~repro.obs.registry.MetricsRegistry.snapshot` (or the merged
fleet form from :func:`~repro.obs.registry.merge_snapshots`), so a
snapshot can be saved once and re-rendered in either format later --
which is exactly what the ``metrics --from`` CLI path does.

The Prometheus rendering follows the text exposition format: ``# HELP``
and ``# TYPE`` per family, escaped label values, and histograms as
``_bucket{le=...}`` series with cumulative counts plus ``_sum`` and
``_count``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

#: Identifies a saved snapshot file (schema marker for loaders).
SNAPSHOT_FORMAT = "colt-metrics"
SNAPSHOT_VERSION = 1


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(labels[key]))}"' for key in sorted(labels)
    )
    return "{" + inner + "}"


def _bucket_labels(labels: Dict[str, str], bound: str) -> str:
    merged = dict(labels)
    merged["le"] = bound
    inner = ",".join(
        f'{key}="{_escape_label(str(merged[key]))}"'
        for key in sorted(merged, key=lambda k: (k == "le", k))
    )
    return "{" + inner + "}"


def _prom_bound(bound: str) -> str:
    """Normalize a stored bucket bound to Prometheus style."""
    if bound == "+Inf":
        return "+Inf"
    value = float(bound)
    return _format_value(value) if value.is_integer() else repr(value)


def to_prometheus_text(metrics: List[Dict]) -> str:
    """Render a metrics snapshot in Prometheus text exposition format."""
    lines: List[str] = []
    for family in metrics:
        name = family["name"]
        lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {family['type']}")
        if family["type"] == "histogram":
            for sample in family["samples"]:
                labels = sample["labels"]
                for bound, count in sample["buckets"].items():
                    lines.append(
                        f"{name}_bucket"
                        f"{_bucket_labels(labels, _prom_bound(bound))}"
                        f" {_format_value(count)}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(labels)}"
                    f" {_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)}"
                    f" {_format_value(sample['count'])}"
                )
        else:
            for sample in family["samples"]:
                lines.append(
                    f"{name}{_render_labels(sample['labels'])}"
                    f" {_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n"


def build_snapshot(
    metrics: List[Dict],
    overhead: Optional[List[Dict]] = None,
    spans: Optional[Dict[str, Dict[str, float]]] = None,
) -> Dict:
    """Assemble the self-describing snapshot document.

    Args:
        metrics: Family list from a registry (or merged) snapshot.
        overhead: Per-epoch overhead rows
            (:meth:`~repro.obs.dashboard.OverheadDashboard.to_rows`).
        spans: Span summary
            (:meth:`~repro.obs.spans.SpanTracer.summary`).
    """
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "metrics": metrics,
        "overhead": overhead or [],
        "spans": spans or {},
    }


def to_json_text(snapshot: Dict) -> str:
    """Render a snapshot document as pretty-printed JSON."""
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


def load_snapshot(path: str) -> Dict:
    """Load a snapshot document saved by :func:`write_metrics`.

    Raises:
        ValueError: if the file is not a recognizable snapshot.
    """
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(f"{path} is not a {SNAPSHOT_FORMAT} snapshot")
    return doc


def render_snapshot(snapshot: Dict, fmt: str) -> str:
    """Render a snapshot document as ``"prom"`` or ``"json"`` text."""
    if fmt == "prom":
        return to_prometheus_text(snapshot["metrics"])
    if fmt == "json":
        return to_json_text(snapshot)
    raise ValueError(f"unknown metrics format {fmt!r}")


def format_for_path(path: str) -> str:
    """Infer the output format from a file extension.

    ``.prom`` and ``.txt`` mean Prometheus text; everything else
    (including ``.json``) means the JSON snapshot document.
    """
    lowered = path.lower()
    if lowered.endswith(".prom") or lowered.endswith(".txt"):
        return "prom"
    return "json"


def write_metrics(path: str, snapshot: Dict, fmt: Optional[str] = None) -> str:
    """Write a snapshot document to ``path``; returns the format used.

    Args:
        path: Destination file.
        snapshot: Document from :func:`build_snapshot`.
        fmt: ``"prom"`` or ``"json"``; inferred from the extension when
            omitted.
    """
    chosen = fmt or format_for_path(path)
    text = render_snapshot(snapshot, chosen)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return chosen
