"""The stable metric-name catalog (the dashboard contract).

Every metric family the core tuner, resilience layer, and fleet emit is
declared here, once, with its type and label set.  Instrumented modules
build their collectors *from* these specs, so a renamed or relabeled
metric is a one-file change -- and the metrics-contract test asserts
that every catalog entry actually appears in the Prometheus export,
which is what keeps external dashboards from silently breaking.

Name conventions follow Prometheus: ``*_total`` for counters, bare
nouns for gauges, unit-suffixed names for histograms (``_seconds``,
``_cost``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple, Union

from repro.obs.registry import (
    COST_BUCKETS,
    LATENCY_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


@dataclasses.dataclass(frozen=True)
class MetricSpec:
    """Declaration of one stable metric family.

    Attributes:
        name: Prometheus-style family name.
        kind: ``"counter"``, ``"gauge"`` or ``"histogram"``.
        help: One-line description (the ``# HELP`` text).
        labelnames: Label keys every sample binds.
        buckets: Histogram bucket bounds (histograms only).
    """

    name: str
    kind: str
    help: str
    labelnames: Tuple[str, ...] = ()
    buckets: Optional[Tuple[float, ...]] = None

    def build(
        self, registry: MetricsRegistry
    ) -> Union[Counter, Gauge, Histogram]:
        """Create (or fetch) this family's collector on a registry."""
        if self.kind == "counter":
            return registry.counter(self.name, self.help, self.labelnames)
        if self.kind == "gauge":
            return registry.gauge(self.name, self.help, self.labelnames)
        if self.kind == "histogram":
            return registry.histogram(
                self.name,
                self.help,
                self.labelnames,
                buckets=self.buckets or SECONDS_BUCKETS,
            )
        raise ValueError(f"unknown metric kind {self.kind!r}")


def _catalog(*specs: MetricSpec) -> Dict[str, MetricSpec]:
    out: Dict[str, MetricSpec] = {}
    for spec in specs:
        if spec.name in out:
            raise ValueError(f"duplicate metric spec {spec.name!r}")
        out[spec.name] = spec
    return out


#: Families emitted by :class:`~repro.core.colt.ColtTuner`.
TUNER_METRICS = _catalog(
    MetricSpec("colt_queries_total", "counter", "Queries processed by the tuner."),
    MetricSpec("colt_query_failures_total", "counter", "Queries recorded as failed in skip mode."),
    MetricSpec("colt_epochs_total", "counter", "Epoch boundaries closed."),
    MetricSpec("colt_whatif_calls_total", "counter", "What-if optimizer calls issued."),
    MetricSpec("colt_whatif_overhead_cost_total", "counter", "Cost units charged for what-if calls."),
    MetricSpec("colt_execution_cost_total", "counter", "Execution cost of processed queries."),
    MetricSpec("colt_build_cost_total", "counter", "Index build cost charged at epoch boundaries."),
    MetricSpec("colt_hot_churn_total", "counter", "Indexes entering or leaving the hot set at boundaries."),
    MetricSpec("colt_insert_rows_total", "counter", "Rows applied through process_insert."),
    MetricSpec("colt_query_cost", "histogram", "Per-query execution cost.", buckets=COST_BUCKETS),
    MetricSpec("colt_epoch_close_seconds", "histogram", "Wall-clock time of epoch close (reorganization + builds).", buckets=SECONDS_BUCKETS),
    MetricSpec("colt_knapsack_seconds", "histogram", "Wall-clock time of each knapsack solve.", buckets=SECONDS_BUCKETS),
    MetricSpec("colt_materialized_indexes", "gauge", "Current size of the materialized set M."),
    MetricSpec("colt_hot_indexes", "gauge", "Current size of the hot set H."),
    MetricSpec("colt_whatif_budget", "gauge", "#WI_lim granted for the current epoch."),
    MetricSpec("colt_improvement_ratio", "gauge", "Latest re-budgeting ratio r."),
)

#: Families emitted by :class:`~repro.core.profiler.Profiler`.
PROFILER_METRICS = _catalog(
    MetricSpec("profiler_probes_total", "counter", "What-if probes attempted (including failures)."),
    MetricSpec("profiler_probe_failures_total", "counter", "What-if probes that raised."),
    MetricSpec("profiler_whatif_spent_total", "counter", "What-if budget units spent."),
    MetricSpec("profiler_degraded_queries_total", "counter", "Queries profiled crude-only because the breaker cut the budget."),
    MetricSpec("profiler_clusters", "gauge", "Live query clusters."),
    MetricSpec("profiler_ci_width", "histogram", "Width of (index, cluster) gain confidence intervals after each measurement.", buckets=COST_BUCKETS),
)

#: Families emitted by :class:`~repro.core.gaincache.GainCache`.
GAINCACHE_METRICS = _catalog(
    MetricSpec(
        "gaincache_hits_total",
        "counter",
        "What-if gains served from the cross-query gain cache.",
        labelnames=("kind",),
    ),
    MetricSpec("gaincache_misses_total", "counter", "Gain-cache lookups that fell through to a real what-if probe."),
    MetricSpec("gaincache_stores_total", "counter", "Probe results stored into the gain cache."),
    MetricSpec(
        "gaincache_invalidations_total",
        "counter",
        "Gain-cache entries invalidated.",
        labelnames=("reason",),
    ),
    MetricSpec("gaincache_entries", "gauge", "Entries currently held by the gain cache."),
)

#: Families emitted by :class:`~repro.core.scheduler.Scheduler`.
SCHEDULER_METRICS = _catalog(
    MetricSpec("scheduler_builds_total", "counter", "Index builds completed."),
    MetricSpec("scheduler_build_failures_total", "counter", "Index build attempts that failed."),
    MetricSpec("scheduler_build_cost_total", "counter", "Cost units charged for completed builds."),
    MetricSpec("scheduler_retry_attempts_total", "counter", "Backed-off build retries attempted at boundaries."),
    MetricSpec("scheduler_recovered_builds_total", "counter", "Failed builds recovered by a retry."),
    MetricSpec("scheduler_abandoned_builds_total", "counter", "Failed builds whose retry policy was exhausted."),
    MetricSpec("scheduler_retry_queue_depth", "gauge", "Failed builds currently awaiting retry."),
    MetricSpec("scheduler_pending_builds", "gauge", "Builds queued under the idle-time policy."),
)

#: Families emitted by the resilience layer (breaker transitions).
RESILIENCE_METRICS = _catalog(
    MetricSpec(
        "breaker_transitions_total",
        "counter",
        "Profiling circuit-breaker state transitions.",
        labelnames=("from_state", "to_state"),
    ),
)

#: Families emitted by :class:`~repro.fleet.coordinator.FleetCoordinator`.
FLEET_METRICS = _catalog(
    MetricSpec("fleet_queries_routed_total", "counter", "Queries routed, per serving replica.", labelnames=("replica",)),
    MetricSpec("fleet_routing_probes_total", "counter", "What-if probes spent on routing decisions."),
    MetricSpec("fleet_routing_overhead_cost_total", "counter", "Cost units charged for routing probes."),
    MetricSpec("fleet_reorganizations_total", "counter", "Fleet epoch boundaries closed."),
    MetricSpec("fleet_drain_events_total", "counter", "Replicas newly drained at boundaries."),
    MetricSpec("fleet_restore_events_total", "counter", "Replicas newly restored at boundaries."),
    MetricSpec("fleet_moved_assignments_total", "counter", "Affinity keys redistributed away from drained replicas."),
    MetricSpec("fleet_rebalanced_keys_total", "counter", "Affinity keys moved toward starved replicas."),
    MetricSpec("fleet_probe_budget", "gauge", "Cost router probe budget granted for the current fleet epoch."),
    MetricSpec("fleet_config_divergence", "gauge", "Mean pairwise Jaccard distance between replica materialized sets."),
    MetricSpec("fleet_replica_health", "gauge", "Replica health (0 healthy, 1 degraded, 2 drained).", labelnames=("replica",)),
    MetricSpec("fleet_rollouts_started_total", "counter", "Canary rollouts started for newly recommended indexes."),
    MetricSpec("fleet_rollouts_promoted_total", "counter", "Canary rollouts promoted fleet-wide after verification."),
    MetricSpec("fleet_rollouts_rolled_back_total", "counter", "Canary rollouts rolled back after a failed verification."),
    MetricSpec("fleet_canary_reassignments_total", "counter", "Canary duties reassigned after the canary replica drained."),
    MetricSpec("fleet_active_canaries", "gauge", "Rollouts currently in the canary stage."),
)

#: Families emitted by :class:`~repro.bandit.tuner.BanditTuner`.
BANDIT_METRICS = _catalog(
    MetricSpec("bandit_queries_total", "counter", "Queries processed by the bandit tuner."),
    MetricSpec("bandit_query_failures_total", "counter", "Queries recorded as failed in skip mode."),
    MetricSpec("bandit_epochs_total", "counter", "Bandit decision rounds closed."),
    MetricSpec("bandit_reward_samples_total", "counter", "Reward observations folded into the linear model."),
    MetricSpec("bandit_observe_probes_total", "counter", "Counterfactual reward probes issued (one optimizer call each)."),
    MetricSpec("bandit_observe_overhead_cost_total", "counter", "Cost units charged for reward probes and shadow executions."),
    MetricSpec("bandit_safety_fallbacks_total", "counter", "Configuration changes reverted by the safety fallback."),
    MetricSpec("bandit_forced_exploration_epochs_total", "counter", "Decision rounds selected without build-cost hysteresis."),
    MetricSpec("bandit_arms", "gauge", "Arms in the pool at the latest decision round."),
    MetricSpec("bandit_materialized_indexes", "gauge", "Current size of the bandit's materialized set."),
    MetricSpec("bandit_confidence_width", "histogram", "Confidence width of arms scored at decision rounds.", buckets=COST_BUCKETS),
    MetricSpec("bandit_reward", "histogram", "Per-query reward (observed cost savings) per model update.", buckets=COST_BUCKETS),
)

#: Families emitted by :class:`~repro.guardrails.manager.GuardrailManager`.
GUARDRAIL_METRICS = _catalog(
    MetricSpec("guardrail_verifications_total", "counter", "Verification observations recorded against materialized indexes."),
    MetricSpec("guardrail_verification_overhead_cost_total", "counter", "Cost units charged for verification probes and shadow executions."),
    MetricSpec(
        "guardrail_verdicts_total",
        "counter",
        "Verification verdicts issued.",
        labelnames=("verdict",),
    ),
    MetricSpec("guardrail_quarantines_total", "counter", "Indexes admitted (or re-admitted) to quarantine."),
    MetricSpec("guardrail_releases_total", "counter", "Indexes released from quarantine."),
    MetricSpec("guardrail_quarantined_indexes", "gauge", "Indexes currently quarantined or on parole."),
    MetricSpec("guardrail_pinned_indexes", "gauge", "Indexes pinned by DBA advice."),
    MetricSpec("guardrail_banned_indexes", "gauge", "Indexes hard-banned right now (advice bans, quarantine blocks, rollout bans)."),
    MetricSpec(
        "guardrail_observed_predicted_ratio",
        "histogram",
        "Observed/predicted savings ratio at verdict time.",
        buckets=(0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0),
    ),
)

#: Families emitted by :class:`~repro.backend.base.Backend` adapters.
BACKEND_METRICS = _catalog(
    MetricSpec(
        "backend_optimize_calls_total",
        "counter",
        "Pricing requests issued to the DBMS backend.",
        labelnames=("backend",),
    ),
    MetricSpec(
        "backend_trace_misses_total",
        "counter",
        "Trace-replay lookups that missed the recorded cost trace.",
    ),
)

#: Families emitted by the throughput serving path: the replay driver
#: (:mod:`repro.bench.replay`), the batched pricer
#: (:class:`~repro.core.batching.BatchedPricer`), and the multiprocess
#: fleet (:mod:`repro.fleet.workers`).
REPLAY_METRICS = _catalog(
    MetricSpec(
        "replay_queries_total",
        "counter",
        "Queries replayed through the throughput driver.",
    ),
    MetricSpec(
        "replay_batches_total",
        "counter",
        "Hot-path batches dispatched by the replay driver.",
    ),
    MetricSpec(
        "replay_query_latency_seconds",
        "histogram",
        "Wall-clock per-query processing latency during replay.",
        buckets=LATENCY_BUCKETS,
    ),
    MetricSpec(
        "replay_batch_memo_hits_total",
        "counter",
        "Base optimizations served from the batched pricer's memo.",
    ),
    MetricSpec(
        "replay_batch_memo_misses_total",
        "counter",
        "Base optimizations the batched pricer had to compute.",
    ),
    MetricSpec(
        "replay_worker_crashes_total",
        "counter",
        "Worker processes lost mid-epoch by the multiprocess fleet.",
    ),
    MetricSpec(
        "replay_workers",
        "gauge",
        "Worker processes currently attached to the fleet coordinator.",
    ),
)

#: Families emitted by the fleet co-tuning loop
#: (:class:`~repro.fleet.cotune.CotuneController`).
COTUNE_METRICS = _catalog(
    MetricSpec(
        "cotune_signatures",
        "gauge",
        "Partition signatures currently tracked by the co-tuning loop.",
    ),
    MetricSpec(
        "cotune_partitions",
        "gauge",
        "Active replicas owning at least one partition signature.",
    ),
    MetricSpec(
        "cotune_migrations_total",
        "counter",
        "Partition signatures moved between replicas (probe-refined "
        "plus drain-forced).",
    ),
    MetricSpec(
        "cotune_probes_total",
        "counter",
        "What-if probes spent on partition refinement at boundaries.",
    ),
    MetricSpec(
        "cotune_probe_overhead_cost_total",
        "counter",
        "Cost units charged for co-tuning refinement probes.",
    ),
    MetricSpec(
        "cotune_fleet_cost_delta",
        "gauge",
        "Relative fleet cost-per-query change at the last boundary "
        "(negative is improvement).",
    ),
    MetricSpec(
        "cotune_divergence_objective",
        "gauge",
        "Configuration divergence treated as the co-tuning steering "
        "signal (mean pairwise Jaccard distance).",
    ),
    MetricSpec(
        "cotune_converged",
        "gauge",
        "Whether partition refinement is frozen (1) or active (0).",
    ),
)

#: Every stable family, by name -- the contract the export must honour.
CATALOG: Dict[str, MetricSpec] = {
    **TUNER_METRICS,
    **PROFILER_METRICS,
    **GAINCACHE_METRICS,
    **SCHEDULER_METRICS,
    **RESILIENCE_METRICS,
    **FLEET_METRICS,
    **BANDIT_METRICS,
    **GUARDRAIL_METRICS,
    **BACKEND_METRICS,
    **REPLAY_METRICS,
    **COTUNE_METRICS,
}
