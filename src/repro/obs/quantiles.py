"""Quantile estimation and merging over the registry's histograms.

The replay driver (``repro.bench.replay``) reports p50/p95/p99 latency
from the same cumulative-bucket histograms the rest of the system
exports -- no second data structure, no raw-sample retention.  The
estimator is the standard Prometheus ``histogram_quantile`` algorithm:
find the lowest bucket whose cumulative count reaches the target rank,
then interpolate linearly inside it.  The error is therefore bounded by
one bucket width, which is what the exact-reference test in
``tests/obs/test_quantiles.py`` pins against a brute-force sorted list.

Because bucket counts are plain sums, histograms from different workers
merge associatively: ``merge(merge(a, b), c) == merge(a, merge(b, c))``.
That is what lets the multiprocess fleet report fleet-wide percentiles
from per-worker snapshots without ever shipping raw samples across the
process boundary.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.registry import Histogram

__all__ = [
    "histogram_quantile",
    "merge_histogram_samples",
    "quantile_from_sample",
    "summarize_sample",
]


def _bounds_and_cumulative(
    buckets: Dict[str, float],
) -> Tuple[List[float], List[int]]:
    """Split a snapshot's bucket dict into sorted bounds + cumulative counts.

    Snapshot bucket keys are ``repr(bound)`` strings plus ``"+Inf"``
    (see :meth:`repro.obs.registry.Histogram.samples`).
    """
    finite = sorted(
        (float(key), int(count))
        for key, count in buckets.items()
        if key != "+Inf"
    )
    bounds = [b for b, _ in finite] + [math.inf]
    cumulative = [c for _, c in finite] + [int(buckets.get("+Inf", 0))]
    return bounds, cumulative


def quantile_from_sample(sample: Dict, q: float) -> Optional[float]:
    """Estimate the ``q``-quantile from one histogram snapshot sample.

    Args:
        sample: One entry of a histogram family's ``samples`` list
            (``{"count": n, "sum": s, "buckets": {...}}``).
        q: Quantile in ``[0, 1]``.

    Returns:
        The interpolated estimate, or None when the sample is empty.
        A quantile landing in the ``+Inf`` bucket clamps to the highest
        finite bound (there is no upper edge to interpolate toward).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    count = int(sample.get("count", 0))
    if count == 0:
        return None
    bounds, cumulative = _bounds_and_cumulative(sample["buckets"])
    rank = q * count
    for i, (bound, cum) in enumerate(zip(bounds, cumulative)):
        if cum >= rank:
            if math.isinf(bound):
                # Clamp into the highest finite bound, as Prometheus does.
                return bounds[-2] if len(bounds) > 1 else 0.0
            lower = bounds[i - 1] if i > 0 else 0.0
            prev_cum = cumulative[i - 1] if i > 0 else 0
            in_bucket = cum - prev_cum
            if in_bucket <= 0:
                return bound
            fraction = (rank - prev_cum) / in_bucket
            return lower + (bound - lower) * fraction
    return bounds[-2] if len(bounds) > 1 else 0.0


def histogram_quantile(
    histogram: Histogram, q: float, **labels: object
) -> Optional[float]:
    """Estimate a quantile directly from a live :class:`Histogram`.

    Convenience wrapper over :func:`quantile_from_sample` for callers
    holding the collector rather than a snapshot.
    """
    wanted = {k: str(v) for k, v in labels.items()}
    for sample in histogram.samples():
        if sample["labels"] == wanted:
            return quantile_from_sample(sample, q)
    return None


def merge_histogram_samples(samples: Iterable[Dict]) -> Dict:
    """Merge histogram snapshot samples (counts and sums add).

    All samples must share one bucket layout; the merged sample drops
    labels (callers merging across workers re-label as needed).  The
    operation is associative and commutative, so fleet-wide percentiles
    do not depend on worker collection order.

    Raises:
        ValueError: when samples disagree on bucket bounds.
    """
    merged_count = 0
    merged_sum = 0.0
    merged_buckets: Optional[Dict[str, int]] = None
    for sample in samples:
        buckets = sample["buckets"]
        if merged_buckets is None:
            merged_buckets = {k: int(v) for k, v in buckets.items()}
        else:
            if set(merged_buckets) != set(buckets):
                raise ValueError(
                    "cannot merge histograms with different bucket layouts"
                )
            for key, value in buckets.items():
                merged_buckets[key] += int(value)
        merged_count += int(sample["count"])
        merged_sum += float(sample["sum"])
    return {
        "labels": {},
        "count": merged_count,
        "sum": merged_sum,
        "buckets": merged_buckets or {},
    }


def summarize_sample(
    sample: Dict, quantiles: Sequence[float] = (0.5, 0.95, 0.99)
) -> Dict[str, Optional[float]]:
    """p50/p95/p99-style summary of one histogram sample.

    Keys are ``p<percent>`` (``p50``, ``p95``, ``p99`` by default) plus
    ``count`` and ``mean``.
    """
    count = int(sample.get("count", 0))
    out: Dict[str, Optional[float]] = {
        f"p{round(q * 100)}": quantile_from_sample(sample, q)
        for q in quantiles
    }
    out["count"] = count
    out["mean"] = (float(sample["sum"]) / count) if count else None
    return out
