"""Observability for the COLT reproduction: metrics, spans, overhead.

The subsystem is dependency-free and instance-scoped: each tuner or
fleet coordinator owns (or shares) a :class:`MetricsRegistry`, a
:class:`SpanTracer`, and an :class:`OverheadDashboard`, and exposes a
merged snapshot via ``metrics_snapshot()``.  Exporters render snapshots
as Prometheus text or JSON; :mod:`repro.obs.names` is the stable
catalog of every metric family the instrumented code emits.

``docs/OBSERVABILITY.md`` is the narrative guide (what is instrumented,
the overhead dashboard's invariant, and the CLI surface).
"""

from repro.obs.dashboard import (
    EpochOverheadRecord,
    OverheadDashboard,
    render_overhead_rows,
)
from repro.obs.export import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    build_snapshot,
    format_for_path,
    load_snapshot,
    render_snapshot,
    to_json_text,
    to_prometheus_text,
    write_metrics,
)
from repro.obs.names import (
    CATALOG,
    FLEET_METRICS,
    PROFILER_METRICS,
    RESILIENCE_METRICS,
    SCHEDULER_METRICS,
    TUNER_METRICS,
    MetricSpec,
)
from repro.obs.registry import (
    COST_BUCKETS,
    NULL_REGISTRY,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricError,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.spans import Span, SpanTracer, merge_span_summaries
