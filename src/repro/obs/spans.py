"""Lightweight span tracing for the tuning pipeline.

A span is one timed scope -- a processed query, an epoch close, a fleet
reorganization -- with a name and a small attribute dict.  The tracer
keeps the most recent spans in a bounded ring (old spans fall off; this
is a diagnostic surface, not a durable log) plus running per-name
aggregates that never reset, so the exporter can report totals even
after the ring has wrapped.

Usage::

    tracer = SpanTracer()
    with tracer.span("epoch_close", epoch=3):
        ...reorganize...
    tracer.summary()["epoch_close"]["count"]  # -> 1
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional


@dataclasses.dataclass
class Span:
    """One finished timed scope.

    Attributes:
        name: Scope name (``"query"``, ``"epoch_close"``, ...).
        start: Clock reading at entry (``time.perf_counter`` units).
        duration: Elapsed seconds.
        attrs: Small identifying attributes (epoch number, replica id).
    """

    name: str
    start: float
    duration: float
    attrs: Dict[str, object]


class _SpanHandle:
    """Context manager recording one span on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start")

    def __init__(self, tracer: "SpanTracer", name: str, attrs: Dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_SpanHandle":
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        tracer = self._tracer
        duration = tracer._clock() - self._start
        tracer._record(self._name, self._start, duration, self._attrs)


class _NoopHandle:
    """Shared do-nothing handle returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NoopHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP = _NoopHandle()


class SpanTracer:
    """Bounded-ring span recorder with per-name running aggregates.

    Args:
        capacity: Maximum finished spans retained in the ring.
        enabled: When False, :meth:`span` returns a shared no-op handle
            (zero allocation, no clock reads).
        clock: Monotonic clock; injectable for deterministic tests.
    """

    def __init__(
        self,
        capacity: int = 256,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.enabled = enabled
        self._clock = clock
        self._ring: Deque[Span] = deque(maxlen=capacity)
        # name -> [count, total_seconds, max_seconds]
        self._totals: Dict[str, List] = {}

    def span(self, name: str, **attrs: object):
        """Open a timed scope; use as a context manager."""
        if not self.enabled:
            return _NOOP
        return _SpanHandle(self, name, attrs)

    def _record(
        self, name: str, start: float, duration: float, attrs: Dict
    ) -> None:
        self._ring.append(
            Span(name=name, start=start, duration=duration, attrs=attrs)
        )
        totals = self._totals.get(name)
        if totals is None:
            self._totals[name] = [1, duration, duration]
        else:
            totals[0] += 1
            totals[1] += duration
            totals[2] = max(totals[2], duration)

    # ------------------------------------------------------------------
    def recent(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans still in the ring, oldest first."""
        if name is None:
            return list(self._ring)
        return [s for s in self._ring if s.name == name]

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-name aggregates over every span ever recorded."""
        return {
            name: {
                "count": count,
                "total_seconds": total,
                "max_seconds": peak,
            }
            for name, (count, total, peak) in sorted(self._totals.items())
        }


def merge_span_summaries(
    summaries: "List[Dict[str, Dict[str, float]]]",
) -> Dict[str, Dict[str, float]]:
    """Combine per-component span summaries (counts add, maxima max)."""
    merged: Dict[str, Dict[str, float]] = {}
    for summary in summaries:
        for name, stats in summary.items():
            target = merged.setdefault(
                name, {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0}
            )
            target["count"] += stats["count"]
            target["total_seconds"] += stats["total_seconds"]
            target["max_seconds"] = max(
                target["max_seconds"], stats["max_seconds"]
            )
    return dict(sorted(merged.items()))
