"""The overhead dashboard: COLT's self-regulation signal, per epoch.

The paper's central safety claim is that profiling overhead regulates
itself: the re-budgeting ratio ``r = NetBenefit(M')/NetBenefit(M)``
maps onto the next epoch's what-if allowance ``#WI_lim``, so a tuner
that has converged stops paying for what-if calls.  This module records
the evidence per epoch -- budget *requested* (the hard cap ``#WI_max``),
*granted* (``#WI_lim`` in force), and *spent* (calls actually issued) --
so benchmarks and operators can assert the invariant ``spent <= granted
<= requested`` and watch the spend decay once the configuration is
stable.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List


@dataclasses.dataclass(frozen=True)
class EpochOverheadRecord:
    """One epoch's overhead accounting.

    Attributes:
        epoch: 0-based epoch number.
        requested: The hard per-epoch cap ``#WI_max``.
        granted: ``#WI_lim`` in force during the epoch (decided by the
            previous boundary's re-budgeting).
        spent: What-if calls actually issued during the epoch.
        ratio: The re-budgeting ratio ``r`` computed at this epoch's
            close (drives the *next* epoch's grant).
        build_cost: Index build cost charged at this boundary.
        breaker_state: Profiling circuit-breaker state after the
            boundary.
    """

    epoch: int
    requested: int
    granted: int
    spent: int
    ratio: float
    build_cost: float
    breaker_state: str

    @property
    def within_budget(self) -> bool:
        """Whether the epoch's spend respected its granted allowance."""
        return self.spent <= self.granted

    def to_dict(self) -> Dict:
        """JSON-compatible form for metrics snapshots."""
        return dataclasses.asdict(self)


class OverheadDashboard:
    """Per-epoch overhead records for one tuner.

    Attributes:
        records: Every epoch's :class:`EpochOverheadRecord`, in order.
    """

    def __init__(self) -> None:
        self.records: List[EpochOverheadRecord] = []

    def record(
        self,
        requested: int,
        granted: int,
        spent: int,
        ratio: float,
        build_cost: float,
        breaker_state: str,
    ) -> EpochOverheadRecord:
        """Append one epoch's accounting and return the record."""
        entry = EpochOverheadRecord(
            epoch=len(self.records),
            requested=requested,
            granted=granted,
            spent=spent,
            ratio=ratio,
            build_cost=build_cost,
            breaker_state=breaker_state,
        )
        self.records.append(entry)
        return entry

    # ------------------------------------------------------------------
    @property
    def within_budget(self) -> bool:
        """Whether every epoch respected its granted allowance."""
        return all(r.within_budget for r in self.records)

    @property
    def total_spent(self) -> int:
        """What-if calls issued across all recorded epochs."""
        return sum(r.spent for r in self.records)

    def spend_fraction(self, tail: int = 5) -> float:
        """Mean ``spent / requested`` over the last ``tail`` epochs.

        The convergence signal Figure 5 charts: once the configuration
        is stable this decays toward 0 (profiling hibernates).  Returns
        1.0 when no epochs are recorded (nothing proven yet).
        """
        window = self.records[-tail:]
        if not window:
            return 1.0
        fractions = [
            r.spent / r.requested if r.requested else 0.0 for r in window
        ]
        return sum(fractions) / len(fractions)

    def to_rows(self) -> List[Dict]:
        """JSON-compatible rows for metrics snapshots."""
        return [r.to_dict() for r in self.records]

    def render(self) -> str:
        """Human-readable overhead table."""
        table = render_overhead_rows(self.to_rows())
        if not self.records:
            return table
        return (
            f"{table}\n"
            f"total what-if spend {self.total_spent}; "
            f"tail spend fraction {self.spend_fraction():.2f}; "
            f"within budget: {'yes' if self.within_budget else 'NO'}"
        )


def render_overhead_rows(rows: List[Dict]) -> str:
    """Render overhead record rows as a human-readable table.

    Accepts the rows of a saved metrics snapshot; rows carrying a
    ``replica`` key (fleet-merged snapshots) get a replica column.
    """
    if not rows:
        return "(no epochs recorded)"
    fleet = any("replica" in row for row in rows)
    header = (
        f"{'ep':>4} {'req':>4} {'grant':>6} {'spent':>6} {'r':>6} "
        f"{'build cost':>11}  breaker"
    )
    if fleet:
        header = f"{'repl':>5} " + header
    lines = [header]
    for row in rows:
        line = (
            f"{row['epoch']:>4} {row['requested']:>4} {row['granted']:>6} "
            f"{row['spent']:>6} {row['ratio']:>6.2f} "
            f"{row['build_cost']:>11.0f}  {row['breaker_state']}"
        )
        if fleet:
            line = f"{str(row.get('replica', '-')):>5} " + line
        lines.append(line)
    return "\n".join(lines)
