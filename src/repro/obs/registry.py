"""Dependency-free metrics registry: counters, gauges, histograms.

The registry is deliberately tiny and allocation-light so the tuner's
hot path (every arriving query) can afford it: a metric handle is
created once at instrumentation time and each update is a dict lookup
plus a float add.  A registry built with ``enabled=False`` turns every
update into an early return, which is how the overhead benchmark
measures the instrumentation's wall-clock cost.

All three collector types support Prometheus-style labels, declared at
registration time (``labelnames``) and bound per update (``inc(1,
replica="0")``).  Snapshots are plain JSON-compatible dicts; the
Prometheus text rendering lives in :mod:`repro.obs.export`.

Design choices mirroring ``prometheus_client`` (the idiom, not the
code): registration is idempotent for an identical (name, kind,
labelnames) triple and an error for a conflicting one, so two
subsystems can safely share a registry; samples are ordered
deterministically (registration order, then sorted label values) so
exports diff cleanly across runs.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class MetricError(ValueError):
    """Raised for invalid metric registration or label usage."""


#: Default histogram buckets for wall-clock durations, in seconds.
SECONDS_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
)

#: Fine-grained buckets for per-query replay latencies, in seconds.
#: The serving hot path prices a query in well under a millisecond, so
#: the ``SECONDS_BUCKETS`` floor (0.5 ms) would collapse every
#: observation into one bucket and p50/p95/p99 would be meaningless;
#: these extend three decades lower at the same ~2.5x spacing.
LATENCY_BUCKETS = (
    0.000_01,
    0.000_025,
    0.000_05,
    0.000_1,
    0.000_25,
    0.000_5,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
)

#: Default histogram buckets for optimizer cost units (wide, log-spaced).
COST_BUCKETS = (
    1.0,
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
)


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c == "_" for c in name):
        raise MetricError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise MetricError(f"metric name {name!r} must not start with a digit")


class Metric:
    """Base collector: a named family of labeled samples.

    Args:
        name: Metric family name (``[a-zA-Z_][a-zA-Z0-9_]*``).
        help: One-line description rendered as ``# HELP``.
        labelnames: Label keys every sample of this family must bind.
        enabled: When False every update is a no-op (the registry's
            disabled mode).
    """

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        enabled: bool = True,
    ) -> None:
        _validate_name(name)
        for label in labelnames:
            _validate_name(label)
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._sorted_labelnames = tuple(sorted(self.labelnames))
        self._enabled = enabled
        self._samples: Dict[Tuple[str, ...], float] = {}

    # ------------------------------------------------------------------
    def _labelvalues(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        # Fast path for the common unlabeled family: hot-path updates
        # (one per query) must not pay two sorted() calls.
        if not labels and not self.labelnames:
            return ()
        if tuple(sorted(labels)) != self._sorted_labelnames:
            raise MetricError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[k]) for k in self.labelnames)

    def value(self, **labels: object) -> float:
        """The current value for one label binding (0.0 if never set)."""
        return self._samples.get(self._labelvalues(labels), 0.0)

    def samples(self) -> List[Dict]:
        """JSON-compatible samples, deterministically ordered."""
        return [
            {"labels": dict(zip(self.labelnames, key)), "value": value}
            for key, value in sorted(self._samples.items())
        ]

    def snapshot(self) -> Dict:
        """JSON-compatible description of this metric family."""
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "samples": self.samples(),
        }


class Counter(Metric):
    """A monotonically increasing value (events, spent cost units)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (must be >= 0) to one label binding's value."""
        if not self._enabled:
            return
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease")
        key = self._labelvalues(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount


class Gauge(Metric):
    """A value that can go up and down (set sizes, current budgets)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        """Set one label binding's value."""
        if not self._enabled:
            return
        self._samples[self._labelvalues(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (may be negative) to one label binding's value."""
        if not self._enabled:
            return
        key = self._labelvalues(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        """Subtract ``amount`` from one label binding's value."""
        self.inc(-amount, **labels)


class Histogram(Metric):
    """Cumulative-bucket histogram (Prometheus semantics).

    Args:
        name / help / labelnames / enabled: As for :class:`Metric`.
        buckets: Ascending upper bounds; a ``+Inf`` bucket is implicit.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = SECONDS_BUCKETS,
        enabled: bool = True,
    ) -> None:
        super().__init__(name, help, labelnames, enabled=enabled)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricError(f"histogram {name} buckets must be ascending")
        if not bounds:
            raise MetricError(f"histogram {name} needs at least one bucket")
        self.buckets = bounds
        # key -> [count, sum, per-bucket counts (non-cumulative)]
        self._series: Dict[Tuple[str, ...], List] = {}

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation."""
        if not self._enabled:
            return
        key = self._labelvalues(labels)
        series = self._series.get(key)
        if series is None:
            series = [0, 0.0, [0] * (len(self.buckets) + 1)]
            self._series[key] = series
        series[0] += 1
        series[1] += value
        series[2][bisect.bisect_left(self.buckets, value)] += 1

    def count(self, **labels: object) -> int:
        """Number of observations for one label binding."""
        series = self._series.get(self._labelvalues(labels))
        return series[0] if series else 0

    def sum(self, **labels: object) -> float:
        """Sum of observations for one label binding."""
        series = self._series.get(self._labelvalues(labels))
        return series[1] if series else 0.0

    def samples(self) -> List[Dict]:
        """Per-binding count/sum plus cumulative bucket counts."""
        out = []
        for key, (count, total, raw) in sorted(self._series.items()):
            cumulative = {}
            acc = 0
            for bound, n in zip(self.buckets, raw):
                acc += n
                cumulative[repr(bound)] = acc
            cumulative["+Inf"] = count
            out.append(
                {
                    "labels": dict(zip(self.labelnames, key)),
                    "count": count,
                    "sum": total,
                    "buckets": cumulative,
                }
            )
        return out


class MetricsRegistry:
    """A collection of metrics owned by one subsystem instance.

    Args:
        enabled: When False, every collector this registry creates is a
            no-op and snapshots carry no samples -- the switch the
            overhead benchmark flips.

    Registries are instance-scoped on purpose (no process-global
    default): each tuner, scheduler, and fleet coordinator owns or
    shares one explicitly, so tests and replicas never interfere.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------
    def _register(self, metric: Metric) -> Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if (
                existing.kind != metric.kind
                or existing.labelnames != metric.labelnames
            ):
                raise MetricError(
                    f"metric {metric.name!r} already registered as "
                    f"{existing.kind}{existing.labelnames}"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        """Register (or fetch) a counter family."""
        metric = self._register(
            Counter(name, help, labelnames, enabled=self.enabled)
        )
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Register (or fetch) a gauge family."""
        metric = self._register(
            Gauge(name, help, labelnames, enabled=self.enabled)
        )
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = SECONDS_BUCKETS,
    ) -> Histogram:
        """Register (or fetch) a histogram family."""
        metric = self._register(
            Histogram(name, help, labelnames, buckets, enabled=self.enabled)
        )
        assert isinstance(metric, Histogram)
        return metric

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        """The registered metric with this name, if any."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """Registered family names in registration order."""
        return list(self._metrics)

    def snapshot(self) -> List[Dict]:
        """JSON-compatible snapshot of every family, registration order."""
        return [m.snapshot() for m in self._metrics.values()]


#: Shared no-op registry for components constructed without one.
NULL_REGISTRY = MetricsRegistry(enabled=False)


def merge_snapshots(
    parts: Iterable[Tuple[List[Dict], Dict[str, str]]],
) -> List[Dict]:
    """Merge per-component metric snapshots into one family list.

    Args:
        parts: ``(snapshot, extra_labels)`` pairs; every sample of a
            snapshot gains the extra labels (e.g. ``{"replica": "0"}``)
            before merging.  Families with the same name are unioned.

    Returns:
        One combined snapshot list, suitable for the exporters.

    Raises:
        MetricError: if two parts register the same family name with
            different types.
    """
    merged: Dict[str, Dict] = {}
    for snapshot, extra in parts:
        extra = {k: str(v) for k, v in extra.items()}
        for family in snapshot:
            target = merged.get(family["name"])
            if target is None:
                target = {
                    "name": family["name"],
                    "type": family["type"],
                    "help": family["help"],
                    "labelnames": sorted(
                        set(family["labelnames"]) | set(extra)
                    ),
                    "samples": [],
                }
                merged[family["name"]] = target
            elif target["type"] != family["type"]:
                raise MetricError(
                    f"conflicting types for {family['name']!r}: "
                    f"{target['type']} vs {family['type']}"
                )
            else:
                target["labelnames"] = sorted(
                    set(target["labelnames"])
                    | set(family["labelnames"])
                    | set(extra)
                )
            for sample in family["samples"]:
                copied = dict(sample)
                copied["labels"] = {**sample["labels"], **extra}
                target["samples"].append(copied)
    return list(merged.values())
