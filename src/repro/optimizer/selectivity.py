"""Predicate selectivity estimation.

Selectivities come from per-column statistics (histograms when available,
uniform interpolation otherwise) and are combined under the attribute
independence assumption, as in the Selinger model the paper's cost
formulas reference.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.engine.catalog import Catalog
from repro.sql.ast import (
    BetweenPredicate,
    CompareOp,
    ComparisonPredicate,
    InPredicate,
)

# Default selectivity for inequality (<>) predicates when stats are thin.
DEFAULT_NE_SELECTIVITY = 0.995
MIN_SELECTIVITY = 1e-9


def predicate_selectivity(catalog: Catalog, pred) -> float:
    """Selectivity of one single-table predicate in [0, 1].

    Args:
        catalog: Catalog providing column statistics.
        pred: A bound filter predicate (comparison, BETWEEN, or IN).

    Raises:
        TypeError: for unsupported predicate types.
    """
    if not isinstance(pred, (ComparisonPredicate, BetweenPredicate, InPredicate)):
        raise TypeError(f"unsupported predicate type {type(pred).__name__}")
    column = pred.column
    stats = catalog.stats(column.table, column.column)

    if isinstance(pred, ComparisonPredicate):
        op = pred.op
        value = pred.value
        if op is CompareOp.EQ:
            sel = stats.eq_selectivity(value)
        elif op is CompareOp.NE:
            sel = max(0.0, 1.0 - stats.eq_selectivity(value))
            sel = min(sel, DEFAULT_NE_SELECTIVITY)
        elif op in (CompareOp.LT, CompareOp.LE):
            sel = stats.range_selectivity(None, value)
            if op is CompareOp.LT:
                sel = max(0.0, sel - stats.eq_selectivity(value))
        else:  # GT or GE
            sel = stats.range_selectivity(value, None)
            if op is CompareOp.GT:
                sel = max(0.0, sel - stats.eq_selectivity(value))
        return _clamp(sel)

    if isinstance(pred, BetweenPredicate):
        return _clamp(stats.range_selectivity(pred.low, pred.high))

    sel = sum(stats.eq_selectivity(v) for v in set(pred.values))
    return _clamp(sel)


def combined_selectivity(catalog: Catalog, preds: Iterable) -> float:
    """Selectivity of a conjunction of predicates (independence)."""
    sel = 1.0
    for pred in preds:
        sel *= predicate_selectivity(catalog, pred)
    return _clamp(sel) if sel < 1.0 else 1.0


def join_selectivity(catalog: Catalog, join) -> float:
    """Selectivity of one equi-join predicate.

    Uses the classic ``1 / max(ndistinct_left, ndistinct_right)`` rule.
    """
    left = catalog.stats(join.left.table, join.left.column)
    right = catalog.stats(join.right.table, join.right.column)
    denom = max(left.n_distinct, right.n_distinct, 1.0)
    return 1.0 / denom


def operator_count(preds: List) -> int:
    """Number of primitive comparison operations in a predicate list.

    Used to charge CPU operator cost for filter evaluation; IN lists count
    one comparison per element and BETWEEN counts two.
    """
    total = 0
    for pred in preds:
        if isinstance(pred, InPredicate):
            total += len(pred.values)
        elif isinstance(pred, BetweenPredicate):
            total += 2
        else:
            total += 1
    return total


def _clamp(sel: float) -> float:
    return min(1.0, max(MIN_SELECTIVITY, sel))
