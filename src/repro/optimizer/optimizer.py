"""Optimizer facade.

``Optimizer.optimize(query, config)`` returns the cheapest physical plan
for a bound query under a given index configuration, together with its
cost.  A per-query :class:`PlanCache` memoizes access paths keyed by the
subset of the configuration that is *relevant to each table*; this is the
"reuse intermediate solutions from the initial query optimization" trick
the paper's prototype uses to make consecutive what-if calls cheap.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, FrozenSet, Optional, Tuple

from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.optimizer.access import IndexConfig, best_access_path
from repro.optimizer.joins import JoinPlanner
from repro.optimizer.plan import (
    AggregateNode,
    IndexScanNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    SortNode,
)
from repro.sql.ast import Aggregate, Query


def relevant_config(query: Query, config: IndexConfig) -> IndexConfig:
    """Restrict a configuration to indexes that could affect the query.

    An index is relevant if its table appears in the query and its
    column is referenced by a filter or join predicate.  Plan identity
    (and therefore cost) depends only on this restriction, which is both
    the plan-cache key and the configuration signature the cross-query
    gain cache validates against.

    This is a pure function of the query text and the configuration --
    no catalog access -- which is what lets backends without a local
    optimizer (trace replay, remote servers) compute the same
    signatures.
    """
    tables = set(query.tables)
    referenced = {
        (c.table, c.column)
        for c in query.selection_columns() + query.join_columns()
    }
    return frozenset(
        ix
        for ix in config
        if ix.table in tables and (ix.table, ix.column) in referenced
    )


@dataclasses.dataclass
class OptimizationResult:
    """Outcome of one optimization.

    Attributes:
        plan: The chosen physical plan.
        cost: The plan's total estimated cost (same as ``plan.cost``).
        config: The index configuration the plan was optimized under.
    """

    plan: PlanNode
    cost: float
    config: IndexConfig


class PlanCache:
    """Per-query cache of access paths and complete plans.

    Keys access paths by (table, relevant-index subset) so a what-if call
    that hypothesizes an index on table R reuses every other table's path
    untouched, and caches whole plans by the relevant-config signature so
    repeated what-if calls with identical effective configurations are
    free.
    """

    def __init__(self) -> None:
        self.access_paths: Dict[Tuple[str, FrozenSet[IndexDef]], PlanNode] = {}
        self.plans: Dict[FrozenSet[IndexDef], OptimizationResult] = {}
        self.hits = 0
        self.misses = 0


class Optimizer:
    """Cost-based optimizer over a catalog.

    Attributes:
        optimize_count: Number of full optimizations performed, across
            normal and what-if use; exposed for overhead accounting.
    """

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog
        self.optimize_count = 0

    @property
    def catalog(self) -> Catalog:
        """The catalog this optimizer plans against."""
        return self._catalog

    def current_config(self) -> IndexConfig:
        """The currently materialized index set, as a configuration."""
        return frozenset(self._catalog.materialized_indexes())

    def optimize(
        self,
        query: Query,
        config: Optional[IndexConfig] = None,
        cache: Optional[PlanCache] = None,
    ) -> OptimizationResult:
        """Find the cheapest plan for ``query`` under ``config``.

        Args:
            query: A bound query.
            config: Index configuration; defaults to the catalog's
                materialized set.
            cache: Optional per-query cache shared across what-if calls.

        Returns:
            The optimization result with plan and cost.
        """
        if config is None:
            config = self.current_config()
        relevant = self._relevant_config(query, config)
        if cache is not None and relevant in cache.plans:
            cache.hits += 1
            return cache.plans[relevant]

        self.optimize_count += 1
        if cache is not None:
            cache.misses += 1

        access_paths: Dict[str, PlanNode] = {}
        for table in query.tables:
            table_config = frozenset(ix for ix in relevant if ix.table == table)
            key = (table, table_config)
            if cache is not None and key in cache.access_paths:
                access_paths[table] = cache.access_paths[key]
            else:
                path = best_access_path(
                    self._catalog, table, query.filters_on(table), table_config
                )
                access_paths[table] = path
                if cache is not None:
                    cache.access_paths[key] = path

        planner = JoinPlanner(self._catalog, query, relevant)
        plan = planner.plan(access_paths)
        plan = self._finalize(query, plan)
        result = OptimizationResult(plan=plan, cost=plan.cost, config=config)
        if cache is not None:
            cache.plans[relevant] = result
        return result

    # ------------------------------------------------------------------
    def relevant_config(self, query: Query, config: IndexConfig) -> IndexConfig:
        """Restrict a configuration to indexes that could affect the query.

        Delegates to the module-level pure function
        :func:`relevant_config`; kept as a method for existing callers.
        """
        return relevant_config(query, config)

    # Backwards-compatible private alias (pre-gain-cache callers).
    _relevant_config = relevant_config

    def _finalize(self, query: Query, plan: PlanNode) -> PlanNode:
        """Stack aggregation / sort / limit / projection above the join tree."""
        params = self._catalog.params
        aggregates = [
            item.expr for item in query.select if isinstance(item.expr, Aggregate)
        ]
        if aggregates or query.group_by:
            groups = self._group_count(query, plan.rows)
            cost = (
                plan.cost
                + plan.rows
                * (len(aggregates) + len(query.group_by) + 1)
                * params.cpu_operator_cost
                + groups * params.cpu_tuple_cost
            )
            plan = AggregateNode(
                rows=groups,
                cost=cost,
                child=plan,
                group_by=list(query.group_by),
                aggregates=aggregates,
                output=list(query.select),
            )
        if query.order_by and not _provides_order(plan, query.order_by):
            n = max(2.0, plan.rows)
            cost = plan.cost + 2.0 * n * math.log2(n) * params.cpu_operator_cost
            plan = SortNode(rows=plan.rows, cost=cost, child=plan, keys=list(query.order_by))
        if query.limit is not None:
            rows = min(float(query.limit), plan.rows)
            plan = LimitNode(rows=rows, cost=plan.cost, child=plan, limit=query.limit)
        if query.select and not aggregates and not query.group_by:
            cost = plan.cost + plan.rows * params.cpu_operator_cost * len(query.select)
            plan = ProjectNode(rows=plan.rows, cost=cost, child=plan, output=list(query.select))
        return plan

    def _group_count(self, query: Query, input_rows: float) -> float:
        """Estimated number of groups for an aggregation."""
        if not query.group_by:
            return 1.0
        distinct = 1.0
        for col in query.group_by:
            stats = self._catalog.stats(col.table, col.column)
            distinct *= max(1.0, stats.n_distinct)
        return max(1.0, min(input_rows, distinct))


def _provides_order(plan: PlanNode, order_by) -> bool:
    """Whether the plan's output already satisfies the ORDER BY.

    The narrow, safe case: a single ascending key served directly by a
    single-column B+tree range or point scan on that exact column --
    leaf chaining yields rows in key order.  IN-list scans (keys visited
    in list order), parameterized scans, composite indexes, descending
    keys, and anything above a join are all excluded.
    """
    if len(order_by) != 1 or order_by[0].descending:
        return False
    if not isinstance(plan, IndexScanNode):
        return False
    node = plan
    if node.parameterized_by is not None or node.in_values is not None:
        return False
    if node.index.is_composite:
        return False
    key = order_by[0].column
    return node.table == key.table and node.index.column == key.column
