"""Per-relation access path selection.

For each base table the optimizer considers a sequential scan and one
index scan per applicable materialized (or hypothetical) index, picking
the cheapest.  The index scan cost model follows PostgreSQL's: B+tree
descent, leaf traversal, and heap fetches whose randomness is
interpolated by the column's physical-order correlation.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, List, Optional, Tuple

from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.optimizer.plan import IndexScanNode, PlanNode, SeqScanNode
from repro.optimizer.selectivity import combined_selectivity, operator_count
from repro.sql.ast import (
    BetweenPredicate,
    CompareOp,
    ComparisonPredicate,
    InPredicate,
)

IndexConfig = FrozenSet[IndexDef]


@dataclasses.dataclass
class _Sargable:
    """Predicates decomposed for index use.

    For a single-column index either ``lookup_value``, ``in_values``, or
    the range bounds are set.  For a composite index, ``prefix_values``
    holds the values of equality predicates on the leading key columns
    (in key order); the remaining fields then describe the predicate on
    the first non-equality key column, if any.
    """

    consumed: List
    lookup_value: object = None
    in_values: Optional[Tuple] = None
    range_low: object = None
    range_high: object = None
    low_inclusive: bool = True
    high_inclusive: bool = True
    prefix_values: Tuple = ()

    @property
    def num_lookups(self) -> int:
        if self.lookup_value is not None:
            return 1
        if self.in_values is not None:
            return len(self.in_values)
        return 1


def seq_scan_path(catalog: Catalog, table: str, filters: List) -> SeqScanNode:
    """Build a sequential scan path with its cost and cardinality."""
    params = catalog.params
    tdef = catalog.table(table)
    rows = tdef.row_count
    pages = tdef.heap_pages(params)
    sel = combined_selectivity(catalog, filters)
    cost = (
        pages * params.seq_page_cost
        + rows * params.cpu_tuple_cost
        + rows * operator_count(filters) * params.cpu_operator_cost
    )
    return SeqScanNode(rows=max(1.0, rows * sel), cost=cost, table=table, filters=filters)


def index_paths(
    catalog: Catalog, table: str, filters: List, config: IndexConfig
) -> List[IndexScanNode]:
    """All applicable index scan paths for ``table`` under ``config``."""
    paths: List[IndexScanNode] = []
    for index in sorted(config, key=lambda ix: ix.name):
        if index.table != table:
            continue
        sarg = extract_for_index(index, filters)
        if sarg is None:
            continue
        residual = [f for f in filters if f not in sarg.consumed]
        index_sel = combined_selectivity(catalog, sarg.consumed)
        total_sel = combined_selectivity(catalog, filters)
        cost = _index_scan_cost(
            catalog, table, index, index_sel, sarg.num_lookups, residual
        )
        rows = max(1.0, catalog.table(table).row_count * total_sel)
        paths.append(
            IndexScanNode(
                rows=rows,
                cost=cost,
                table=table,
                index=index,
                lookup_value=sarg.lookup_value,
                range_low=sarg.range_low,
                range_high=sarg.range_high,
                residual=residual,
                in_values=sarg.in_values,
                low_inclusive=sarg.low_inclusive,
                high_inclusive=sarg.high_inclusive,
                prefix_values=sarg.prefix_values,
            )
        )
    return paths


def best_access_path(
    catalog: Catalog, table: str, filters: List, config: IndexConfig
) -> PlanNode:
    """The cheapest access path for one relation.

    Considers the sequential scan, one index scan per applicable index
    in ``config``, and -- when a registered materialized view's range
    contains the query's predicate -- a scan of the (smaller) view.
    """
    best: PlanNode = seq_scan_path(catalog, table, filters)
    for path in index_paths(catalog, table, filters, config):
        if path.cost < best.cost:
            best = path
    view_path = _view_scan_path(catalog, table, filters)
    if view_path is not None and view_path.cost < best.cost:
        best = view_path
    return best


def _view_scan_path(catalog: Catalog, table: str, filters: List):
    """A view scan path, if a registered view matches the filters."""
    from repro.engine.matview import matching_view, view_row_count
    from repro.optimizer.plan import ViewScanNode

    views = catalog.materialized_views(table)
    if not views:
        return None
    view = matching_view(catalog, table, filters, views)
    if view is None:
        return None
    params = catalog.params
    tdef = catalog.table(table)
    rows_in_view = view_row_count(catalog, view)
    pages = params.heap_pages(rows_in_view, tdef.row_width)
    sel = combined_selectivity(catalog, filters)
    cost = (
        pages * params.seq_page_cost
        + rows_in_view * params.cpu_tuple_cost
        + rows_in_view * operator_count(filters) * params.cpu_operator_cost
    )
    return ViewScanNode(
        rows=max(1.0, tdef.row_count * sel),
        cost=cost,
        table=table,
        view=view,
        filters=filters,
    )


def parameterized_index_path(
    catalog: Catalog,
    table: str,
    filters: List,
    inner_column: str,
    outer_column,
    config: IndexConfig,
) -> Optional[IndexScanNode]:
    """Inner side of an index nested-loop join, if an index permits it.

    The returned node's ``cost`` and ``rows`` are *per outer tuple* --
    the join node multiplies them by the outer cardinality.

    Args:
        catalog: Catalog with statistics.
        table: Inner relation.
        filters: Inner relation's single-table filters (become residual).
        inner_column: Join column on the inner relation.
        outer_column: The outer :class:`~repro.sql.ast.ColumnExpr`
            supplying lookup keys at run time.
        config: Available indexes.

    Returns:
        A parameterized index scan, or None if no index on the join
        column is available in ``config``.
    """
    # min-by-name rather than next(): ``config`` is a frozenset, and when
    # several indexes lead on the join column the pick must not depend on
    # hash order.
    matches = [
        ix for ix in config if ix.table == table and ix.column == inner_column
    ]
    if not matches:
        return None
    index = min(matches, key=lambda ix: ix.name)
    tdef = catalog.table(table)
    stats = catalog.stats(table, inner_column)
    join_sel = 1.0 / max(1.0, stats.n_distinct)
    filter_sel = combined_selectivity(catalog, filters)
    cost = _index_scan_cost(catalog, table, index, join_sel, 1, filters)
    rows = max(1e-6, tdef.row_count * join_sel * filter_sel)
    return IndexScanNode(
        rows=rows,
        cost=cost,
        table=table,
        index=index,
        residual=filters,
        parameterized_by=outer_column,
    )


def _index_scan_cost(
    catalog: Catalog,
    table: str,
    index: IndexDef,
    index_sel: float,
    num_lookups: int,
    residual: List,
) -> float:
    """Cost of an index scan fetching ``index_sel`` of the table.

    Components: B+tree descent per lookup, leaf-level traversal, heap
    fetches (correlation-interpolated between sequential and random), and
    CPU for index entries, heap tuples, and residual predicate evaluation.
    """
    params = catalog.params
    tdef = catalog.table(table)
    rows = tdef.row_count
    heap_pages = tdef.heap_pages(params)
    stats = catalog.stats(table, index.column)

    tuples = max(0.0, index_sel * rows)
    leaf_pages = params.index_pages(rows, index.key_width)
    height = params.index_height(leaf_pages)

    descent_io = num_lookups * height * params.random_page_cost
    leaf_walk = max(0.0, index_sel * leaf_pages - num_lookups) * params.seq_page_cost

    # A scan cannot fetch more distinct heap pages than exist; repeat
    # visits are assumed to hit the buffer cache (Mackert-Lohman style).
    pages_random = min(tuples, heap_pages)
    pages_seq = min(heap_pages, max(1.0, index_sel * heap_pages)) if tuples > 0 else 0.0
    c2 = stats.correlation * stats.correlation
    heap_io = (
        c2 * pages_seq * params.seq_page_cost
        + (1.0 - c2) * pages_random * params.random_page_cost
    )

    cpu = (
        tuples * params.cpu_index_tuple_cost
        + tuples * params.cpu_tuple_cost
        + tuples * operator_count(residual) * params.cpu_operator_cost
    )
    return descent_io + leaf_walk + heap_io + cpu


def extract_for_index(index: IndexDef, filters: List) -> Optional[_Sargable]:
    """Decompose the filters into index-usable form for any index.

    Single-column indexes use the classic eq > IN > range preference.
    Composite indexes consume equality predicates along the key prefix
    (each extending ``prefix_values``), then at most one more predicate
    on the next key column: an equality (extending the prefix further),
    an IN list (only when it lands on the last key column, where it
    becomes multiple full-key lookups), or a range.  Returns None when
    the leading key column has no usable predicate.
    """
    if not index.is_composite:
        return _extract_sargable(index.column, filters)

    columns = index.columns
    prefix: List = []
    consumed: List = []
    for position, column in enumerate(columns):
        eq = next(
            (
                f
                for f in filters
                if isinstance(f, ComparisonPredicate)
                and f.column.column == column
                and f.op is CompareOp.EQ
                and f not in consumed
            ),
            None,
        )
        if eq is not None:
            prefix.append(eq.value)
            consumed.append(eq)
            continue
        # First non-equality key column: try IN (last column only) or a
        # range, then stop descending the key.
        tail = _extract_sargable(column, [f for f in filters if f not in consumed])
        if tail is None:
            break
        if tail.in_values is not None and position != len(columns) - 1:
            break  # IN mid-key cannot be turned into full-key lookups
        if tail.lookup_value is not None:  # pragma: no cover - eq handled above
            break
        return _Sargable(
            consumed=consumed + tail.consumed,
            in_values=tail.in_values,
            range_low=tail.range_low,
            range_high=tail.range_high,
            low_inclusive=tail.low_inclusive,
            high_inclusive=tail.high_inclusive,
            prefix_values=tuple(prefix),
        )
    if not prefix:
        return None
    if len(prefix) == len(columns):
        # Full-key equality: a single point lookup.
        return _Sargable(
            consumed=consumed,
            lookup_value=prefix[-1],
            prefix_values=tuple(prefix[:-1]),
        )
    return _Sargable(consumed=consumed, prefix_values=tuple(prefix))


def _extract_sargable(column: str, filters: List) -> Optional[_Sargable]:
    """Decompose the filters on ``column`` into index-usable form.

    Preference order: a point lookup (EQ) beats an IN list beats a range.
    Returns None if no filter on the column is sargable.
    """
    eq_pred = None
    in_pred = None
    range_preds = []
    for pred in filters:
        if pred.column.column != column:
            continue
        if isinstance(pred, ComparisonPredicate):
            if pred.op is CompareOp.EQ and eq_pred is None:
                eq_pred = pred
            elif pred.op in (CompareOp.LT, CompareOp.LE, CompareOp.GT, CompareOp.GE):
                range_preds.append(pred)
        elif isinstance(pred, BetweenPredicate):
            range_preds.append(pred)
        elif isinstance(pred, InPredicate) and in_pred is None:
            in_pred = pred

    if eq_pred is not None:
        return _Sargable(consumed=[eq_pred], lookup_value=eq_pred.value)
    if in_pred is not None:
        return _Sargable(consumed=[in_pred], in_values=tuple(in_pred.values))
    if not range_preds:
        return None

    sarg = _Sargable(consumed=[])
    for pred in range_preds:
        if isinstance(pred, BetweenPredicate):
            sarg = _tighten(sarg, pred.low, True, is_low=True)
            sarg = _tighten(sarg, pred.high, True, is_low=False)
        elif pred.op in (CompareOp.GT, CompareOp.GE):
            sarg = _tighten(sarg, pred.value, pred.op is CompareOp.GE, is_low=True)
        else:
            sarg = _tighten(sarg, pred.value, pred.op is CompareOp.LE, is_low=False)
        sarg.consumed.append(pred)
    if sarg.range_low is None and sarg.range_high is None:
        return None
    return sarg


def _tighten(sarg: _Sargable, bound, inclusive: bool, is_low: bool) -> _Sargable:
    if is_low:
        if sarg.range_low is None or bound > sarg.range_low or (
            bound == sarg.range_low and not inclusive
        ):
            sarg.range_low = bound
            sarg.low_inclusive = inclusive
    else:
        if sarg.range_high is None or bound < sarg.range_high or (
            bound == sarg.range_high and not inclusive
        ):
            sarg.range_high = bound
            sarg.high_inclusive = inclusive
    return sarg


def selectivity_of_index_predicates(catalog: Catalog, index: IndexDef, filters: List) -> float:
    """Selectivity of the filters ``index`` would absorb.

    Exposed for COLT's crude benefit model (``BenefitC``), which needs the
    same sargability decision the optimizer makes without paying for a
    full optimization.
    """
    sarg = extract_for_index(index, filters)
    if sarg is None:
        return 1.0
    return combined_selectivity(catalog, sarg.consumed)


def crude_index_delta_cost(catalog: Catalog, index: IndexDef, filters: List) -> float:
    """Crude gain of evaluating the filters with ``index`` vs. a seq scan.

    This is the paper's ``Δcost(R, σ, I)``: standard cost formulas, no
    optimizer invocation.  Returns 0 when the index is inapplicable or
    does not beat the sequential scan.
    """
    sarg = extract_for_index(index, filters)
    if sarg is None:
        return 0.0
    table = index.table
    seq = seq_scan_path(catalog, table, filters)
    index_sel = combined_selectivity(catalog, sarg.consumed)
    residual = [f for f in filters if f not in sarg.consumed]
    cost = _index_scan_cost(catalog, table, index, index_sel, sarg.num_lookups, residual)
    return max(0.0, seq.cost - cost)
