"""Cost-based query optimizer with a what-if interface.

The optimizer is Selinger-style: per-relation access path selection (seq
scan vs. index scan) followed by dynamic-programming join enumeration.
Costs are computed from catalog statistics using the formulas of
``repro.engine.cost_params``, which mirror PostgreSQL's planner.

The :class:`~repro.optimizer.whatif.WhatIfOptimizer` wraps the plain
optimizer with the interface the paper assumes: ``WhatIfOptimize(q, P)``
returns, for each index in the probation set ``P``, the change in the
optimal cost of ``q`` if that index's materialization status were flipped.
"""

from repro.optimizer.optimizer import OptimizationResult, Optimizer
from repro.optimizer.plan import PlanNode, explain
from repro.optimizer.whatif import WhatIfOptimizer

__all__ = [
    "OptimizationResult",
    "Optimizer",
    "PlanNode",
    "WhatIfOptimizer",
    "explain",
]
