"""Physical plan tree.

Every node carries the optimizer's cost and cardinality estimates; the
executor mirrors this tree one-to-one with iterator implementations.  The
``indexes_used`` traversal is what COLT's profiler uses to derive the
indicator ``u_{q,I}`` (whether the optimizer chose index ``I`` for query
``q``) from the normal optimization of each query.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Set, Tuple

from repro.engine.index import IndexDef
from repro.sql.ast import Aggregate, ColumnExpr, JoinPredicate, OrderItem, SelectItem


@dataclasses.dataclass
class PlanNode:
    """Base class for plan nodes.

    Attributes:
        rows: Estimated output cardinality.
        cost: Estimated total cost in planner cost units.
    """

    rows: float
    cost: float

    def children(self) -> List["PlanNode"]:
        """Child nodes, left to right."""
        return []

    def indexes_used(self) -> Set[IndexDef]:
        """All indexes referenced anywhere in this subtree."""
        used: Set[IndexDef] = set()
        stack: List[PlanNode] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, IndexScanNode):
                used.add(node.index)
            stack.extend(node.children())
        return used

    def tables(self) -> Set[str]:
        """All base tables scanned in this subtree."""
        found: Set[str] = set()
        stack: List[PlanNode] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, (SeqScanNode, IndexScanNode, ViewScanNode)):
                found.add(node.table)
            stack.extend(node.children())
        return found

    def label(self) -> str:
        """Short human-readable node label for EXPLAIN output."""
        return type(self).__name__


@dataclasses.dataclass
class SeqScanNode(PlanNode):
    """Full sequential scan of a heap, applying all filters."""

    table: str = ""
    filters: List = dataclasses.field(default_factory=list)

    def label(self) -> str:
        return f"SeqScan({self.table})"


@dataclasses.dataclass
class IndexScanNode(PlanNode):
    """B+tree index scan with heap fetches.

    Attributes:
        table: Base table.
        index: The index driving the scan.
        lookup_value: Key for a point lookup, or None for a range scan.
        range_low / range_high: Inclusive range bounds (None = unbounded).
        residual: Filters applied after the heap fetch.
        in_values: For an IN-list scan, the lookup keys (the scan performs
            one point lookup per key).
        low_inclusive / high_inclusive: Whether the range bounds include
            their endpoints.
        parameterized_by: When set, the scan is the inner side of an index
            nested-loop join and the lookup key comes from this outer
            column at run time; ``cost`` and ``rows`` are then per outer
            tuple rather than totals.
    """

    table: str = ""
    index: Optional[IndexDef] = None
    lookup_value: object = None
    range_low: object = None
    range_high: object = None
    residual: List = dataclasses.field(default_factory=list)
    in_values: Optional[Tuple] = None
    low_inclusive: bool = True
    high_inclusive: bool = True
    # Composite indexes: values of the equality predicates on the leading
    # key columns; the other bound fields then refer to the key column at
    # position len(prefix_values).
    prefix_values: Tuple = ()
    parameterized_by: Optional[ColumnExpr] = None

    def label(self) -> str:
        if self.parameterized_by is not None:
            kind = "param"
        elif self.lookup_value is not None:
            kind = "eq"
        elif self.in_values is not None:
            kind = "in"
        else:
            kind = "range"
        return f"IndexScan({self.index.name}, {kind})"


@dataclasses.dataclass
class ViewScanNode(PlanNode):
    """Sequential scan of a materialized view, applying all filters.

    The view contains a predicate-restricted subset of its base table's
    rows; every original query filter is still applied (matching only
    guarantees the needed rows are *present*, not that others are
    absent within the view).
    """

    table: str = ""
    view: object = None  # a repro.engine.matview.ViewDef
    filters: List = dataclasses.field(default_factory=list)

    def label(self) -> str:
        return f"ViewScan({self.view.name})"


@dataclasses.dataclass
class NestedLoopNode(PlanNode):
    """Nested-loop join; the inner side may be a parameterized index scan."""

    outer: Optional[PlanNode] = None
    inner: Optional[PlanNode] = None
    joins: List[JoinPredicate] = dataclasses.field(default_factory=list)

    def children(self) -> List[PlanNode]:
        return [self.outer, self.inner]

    def label(self) -> str:
        return "NestLoop"


@dataclasses.dataclass
class HashJoinNode(PlanNode):
    """Hash join; the right child is the build side."""

    probe: Optional[PlanNode] = None
    build: Optional[PlanNode] = None
    joins: List[JoinPredicate] = dataclasses.field(default_factory=list)

    def children(self) -> List[PlanNode]:
        return [self.probe, self.build]

    def label(self) -> str:
        return "HashJoin"


@dataclasses.dataclass
class SortNode(PlanNode):
    """Full sort of the child output."""

    child: Optional[PlanNode] = None
    keys: List[OrderItem] = dataclasses.field(default_factory=list)

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        keys = ", ".join(str(k.column) for k in self.keys)
        return f"Sort({keys})"


@dataclasses.dataclass
class AggregateNode(PlanNode):
    """Hash aggregation with optional grouping."""

    child: Optional[PlanNode] = None
    group_by: List[ColumnExpr] = dataclasses.field(default_factory=list)
    aggregates: List[Aggregate] = dataclasses.field(default_factory=list)
    output: List[SelectItem] = dataclasses.field(default_factory=list)

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return "HashAggregate" if self.group_by else "Aggregate"


@dataclasses.dataclass
class ProjectNode(PlanNode):
    """Column projection (no-op for SELECT *)."""

    child: Optional[PlanNode] = None
    output: List[SelectItem] = dataclasses.field(default_factory=list)

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return "Project"


@dataclasses.dataclass
class LimitNode(PlanNode):
    """Row-count limit."""

    child: Optional[PlanNode] = None
    limit: int = 0

    def children(self) -> List[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"Limit({self.limit})"


def explain(plan: PlanNode) -> str:
    """Render a plan tree as indented EXPLAIN-style text."""
    lines: List[str] = []
    _explain(plan, 0, lines)
    return "\n".join(lines)


def _explain(node: PlanNode, depth: int, lines: List[str]) -> None:
    indent = "  " * depth
    lines.append(
        f"{indent}{node.label()}  (rows={node.rows:.0f} cost={node.cost:.2f})"
    )
    for child in node.children():
        _explain(child, depth + 1, lines)


def plan_signature(plan: PlanNode) -> Tuple:
    """A hashable structural summary of a plan (for tests and caching)."""
    parts: List = [plan.label()]
    for child in plan.children():
        parts.append(plan_signature(child))
    return tuple(parts)
