"""What-if optimization interface (the paper's Extended Query Optimizer).

``WhatIfOptimize(q, P)`` measures, for every index ``I`` in the probation
set ``P``, the query gain

    QueryGain(q, I) = QueryCost(q, M − {I}) − QueryCost(q, M ∪ {I})

i.e. the *savings* in execution cost when ``I`` is part of the
materialized set ``M`` (non-negative whenever the index helps).  For a
hypothetical index (``I ∉ M``) this is traditional forward what-if:
optimize with the index added.  For a materialized index the EQO works in
reverse, pretending the index is unavailable, because the normal
optimization already includes it -- exactly as described in §4.1 of the
paper.

Note on sign convention: the paper's formula as printed reads
``QueryCost(q, M ∪ {I}) − QueryCost(q, M − {I})``, but the surrounding
text defines QueryGain as "the savings in execution time", so we use the
orientation that makes gains positive for useful indexes.

Every probe is answered by a pluggable :class:`~repro.backend.base.
Backend` -- the in-python engine by default
(:class:`~repro.backend.local.LocalBackend`), a recorded-trace replayer,
or a HypoPG adapter.  Each probed index costs one what-if call; on
backends with ``plan_cache_reuse`` the per-query
:class:`~repro.optimizer.optimizer.PlanCache` makes the incremental cost
of each call small by reusing sub-plans from the initial optimization --
the same engineering the paper's PostgreSQL prototype does.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.backend.base import BackendError, WhatIfSession
from repro.backend.local import LocalBackend
from repro.engine.index import IndexDef
from repro.optimizer.access import IndexConfig
from repro.optimizer.optimizer import Optimizer
from repro.resilience.errors import WhatIfProbeError
from repro.sql.ast import Query

__all__ = ["WhatIfOptimizer", "WhatIfSession", "WhatIfProbeError"]


class WhatIfOptimizer:
    """The paper's EQO: a cost oracle plus a what-if interface.

    Attributes:
        backend: The :class:`~repro.backend.base.Backend` answering
            probes.
        call_count: Total number of what-if calls issued (one per probed
            index), the quantity Figure 5 charts per epoch.
        failpoint: Optional hook invoked once per probe with the index
            being probed; a fault injector installs one that raises
            :class:`WhatIfProbeError` per its plan.  A failed probe is
            still counted (and charged) -- in the system this simulates,
            a timed-out what-if call costs time.
    """

    def __init__(
        self,
        optimizer: Optional[Optimizer] = None,
        backend=None,
    ) -> None:
        if backend is None:
            if optimizer is None:
                raise ValueError(
                    "WhatIfOptimizer needs an optimizer or a backend"
                )
            backend = LocalBackend(optimizer=optimizer)
        elif optimizer is not None:
            raise ValueError("pass either an optimizer or a backend, not both")
        self.backend = backend
        self.call_count = 0
        self.probed_indexes: set = set()
        self.failpoint: Optional[Callable[[IndexDef], None]] = None

    @property
    def optimizer(self) -> Optional[Optimizer]:
        """The underlying plain optimizer (``None`` for remote/replay)."""
        return getattr(self.backend, "optimizer", None)

    def begin_query(self, query: Query) -> WhatIfSession:
        """Normally optimize ``query`` and open a what-if session for it."""
        return self.backend.begin_query(query)

    def begin_queries(self, queries) -> list:
        """Open sessions for a whole batch (see ``Backend.begin_queries``).

        Element-wise identical to calling :meth:`begin_query` per query;
        batch-aware backends amortize the underlying optimizer work.
        """
        return self.backend.begin_queries(queries)

    def what_if_optimize(
        self,
        session: WhatIfSession,
        probation: Iterable[IndexDef],
        materialized: Optional[IndexConfig] = None,
    ) -> Dict[IndexDef, float]:
        """Measure QueryGain for each index in the probation set.

        Args:
            session: Session from :meth:`begin_query` for this query.
            probation: Indexes to probe (the set ``P`` of Figure 2).
            materialized: The materialized set ``M``; defaults to the
                backend's current configuration.

        Returns:
            Mapping from each probed index to its QueryGain (cost units;
            >= 0 means the index helps or is neutral; may be negative in
            rare cases where hypothesizing an index changes join-order
            tie-breaks).

        Raises:
            WhatIfProbeError: when a probe fails (injected fault, an
                optimizer error, or a reverse probe on a backend without
                ``reverse_whatif``).  The failed call is already
                counted; gains measured earlier in this invocation ride
                along on the exception's ``partial_gains`` so callers
                can consume them instead of re-probing.
            BackendError: when the backend itself is unusable for the
                request (e.g. a trace miss during deterministic replay);
                never absorbed as probe noise.
        """
        if materialized is None:
            materialized = self.backend.current_config()
        capabilities = self.backend.capabilities
        gains: Dict[IndexDef, float] = {}
        for index in probation:
            self.call_count += 1
            self.probed_indexes.add(index)
            try:
                if self.failpoint is not None:
                    self.failpoint(index)
                if index in materialized:
                    # Reverse what-if: how much worse would the query be
                    # without this materialized index?
                    if not capabilities.reverse_whatif:
                        raise WhatIfProbeError(
                            f"backend {capabilities.name!r} cannot reverse "
                            f"what-if materialized index {index}"
                        )
                    without_cost = self.backend.get_cost(
                        session.query,
                        config=materialized - {index},
                        session=session,
                    )
                    with_cost = self._cost_under(session, materialized)
                    gains[index] = without_cost - with_cost
                else:
                    with_cost = self.backend.get_cost(
                        session.query,
                        config=materialized | {index},
                        session=session,
                    )
                    without_cost = self._cost_under(session, materialized)
                    gains[index] = without_cost - with_cost
            except WhatIfProbeError as exc:
                exc.partial_gains = dict(gains)
                raise
            except BackendError:
                raise
            except Exception as exc:
                raise WhatIfProbeError(
                    f"what-if probe for {index} failed: {exc}",
                    partial_gains=gains,
                ) from exc
        return gains

    def relevant_signature(
        self, query: Query, materialized: Optional[IndexConfig] = None
    ) -> frozenset:
        """Hashable signature of the configuration relevant to a query.

        Two what-if probes of the same (query, index) pair return the
        same gain whenever this signature matches, because the
        optimizer only ever planned against the relevant restriction of
        ``M`` -- the property the cross-query gain cache keys on.

        Args:
            query: A bound query.
            materialized: The set ``M`` to restrict; defaults to the
                backend's current configuration.

        Returns:
            Frozenset of ``(table, columns)`` identity keys.
        """
        if materialized is None:
            materialized = self.backend.current_config()
        relevant = self.backend.relevant_config(query, materialized)
        return frozenset((ix.table, ix.columns) for ix in relevant)

    def gains_for(
        self, query: Query, probation: List[IndexDef]
    ) -> Dict[IndexDef, float]:
        """One-shot convenience: optimize ``query`` and probe ``probation``."""
        session = self.begin_query(query)
        return self.what_if_optimize(session, probation)

    def _cost_under(self, session: WhatIfSession, config: IndexConfig) -> float:
        if config == session.base.config:
            return session.base.cost
        return self.backend.get_cost(session.query, config=config, session=session)
