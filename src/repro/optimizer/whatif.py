"""What-if optimization interface (the paper's Extended Query Optimizer).

``WhatIfOptimize(q, P)`` measures, for every index ``I`` in the probation
set ``P``, the query gain

    QueryGain(q, I) = QueryCost(q, M − {I}) − QueryCost(q, M ∪ {I})

i.e. the *savings* in execution cost when ``I`` is part of the
materialized set ``M`` (non-negative whenever the index helps).  For a
hypothetical index (``I ∉ M``) this is traditional forward what-if:
optimize with the index added.  For a materialized index the EQO works in
reverse, pretending the index is unavailable, because the normal
optimization already includes it -- exactly as described in §4.1 of the
paper.

Note on sign convention: the paper's formula as printed reads
``QueryCost(q, M ∪ {I}) − QueryCost(q, M − {I})``, but the surrounding
text defines QueryGain as "the savings in execution time", so we use the
orientation that makes gains positive for useful indexes.

Each probed index costs one what-if call; the per-query
:class:`~repro.optimizer.optimizer.PlanCache` makes the incremental cost
of each call small by reusing sub-plans from the initial optimization --
the same engineering the paper's PostgreSQL prototype does.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional

from repro.engine.index import IndexDef
from repro.optimizer.access import IndexConfig
from repro.optimizer.optimizer import OptimizationResult, Optimizer, PlanCache
from repro.resilience.errors import WhatIfProbeError
from repro.sql.ast import Query

__all__ = ["WhatIfOptimizer", "WhatIfSession", "WhatIfProbeError"]


@dataclasses.dataclass
class WhatIfSession:
    """State carried across the what-if calls for a single query.

    Attributes:
        query: The query being profiled.
        base: The result of the query's normal optimization under the
            current materialized set.
        cache: Plan cache shared by all calls for this query.
    """

    query: Query
    base: OptimizationResult
    cache: PlanCache


class WhatIfOptimizer:
    """The paper's EQO: a standard optimizer plus a what-if interface.

    Attributes:
        call_count: Total number of what-if calls issued (one per probed
            index), the quantity Figure 5 charts per epoch.
        failpoint: Optional hook invoked once per probe with the index
            being probed; a fault injector installs one that raises
            :class:`WhatIfProbeError` per its plan.  A failed probe is
            still counted (and charged) -- in the system this simulates,
            a timed-out what-if call costs time.
    """

    def __init__(self, optimizer: Optimizer) -> None:
        self._optimizer = optimizer
        self.call_count = 0
        self.probed_indexes: set = set()
        self.failpoint: Optional[Callable[[IndexDef], None]] = None

    @property
    def optimizer(self) -> Optimizer:
        """The underlying plain optimizer."""
        return self._optimizer

    def begin_query(self, query: Query) -> WhatIfSession:
        """Normally optimize ``query`` and open a what-if session for it."""
        cache = PlanCache()
        base = self._optimizer.optimize(query, cache=cache)
        return WhatIfSession(query=query, base=base, cache=cache)

    def what_if_optimize(
        self,
        session: WhatIfSession,
        probation: Iterable[IndexDef],
        materialized: Optional[IndexConfig] = None,
    ) -> Dict[IndexDef, float]:
        """Measure QueryGain for each index in the probation set.

        Args:
            session: Session from :meth:`begin_query` for this query.
            probation: Indexes to probe (the set ``P`` of Figure 2).
            materialized: The materialized set ``M``; defaults to the
                catalog's current one.

        Returns:
            Mapping from each probed index to its QueryGain (cost units;
            >= 0 means the index helps or is neutral; may be negative in
            rare cases where hypothesizing an index changes join-order
            tie-breaks).

        Raises:
            WhatIfProbeError: when a probe fails (injected fault or an
                optimizer error).  The failed call is already counted;
                gains for indexes probed earlier in this invocation are
                lost with it, so callers wanting per-index isolation
                probe one index per call.
        """
        if materialized is None:
            materialized = self._optimizer.current_config()
        gains: Dict[IndexDef, float] = {}
        for index in probation:
            self.call_count += 1
            self.probed_indexes.add(index)
            if self.failpoint is not None:
                self.failpoint(index)
            try:
                if index in materialized:
                    # Reverse what-if: how much worse would the query be
                    # without this materialized index?
                    without = self._optimizer.optimize(
                        session.query,
                        config=materialized - {index},
                        cache=session.cache,
                    )
                    with_cost = self._cost_under(session, materialized)
                    gains[index] = without.cost - with_cost
                else:
                    with_index = self._optimizer.optimize(
                        session.query,
                        config=materialized | {index},
                        cache=session.cache,
                    )
                    without_cost = self._cost_under(session, materialized)
                    gains[index] = without_cost - with_index.cost
            except WhatIfProbeError:
                raise
            except Exception as exc:
                raise WhatIfProbeError(
                    f"what-if probe for {index} failed: {exc}"
                ) from exc
        return gains

    def relevant_signature(
        self, query: Query, materialized: Optional[IndexConfig] = None
    ) -> frozenset:
        """Hashable signature of the configuration relevant to a query.

        Two what-if probes of the same (query, index) pair return the
        same gain whenever this signature matches, because the
        optimizer only ever planned against the relevant restriction of
        ``M`` -- the property the cross-query gain cache keys on.

        Args:
            query: A bound query.
            materialized: The set ``M`` to restrict; defaults to the
                catalog's current materialized set.

        Returns:
            Frozenset of ``(table, columns)`` identity keys.
        """
        if materialized is None:
            materialized = self._optimizer.current_config()
        relevant = self._optimizer.relevant_config(query, materialized)
        return frozenset((ix.table, ix.columns) for ix in relevant)

    def gains_for(
        self, query: Query, probation: List[IndexDef]
    ) -> Dict[IndexDef, float]:
        """One-shot convenience: optimize ``query`` and probe ``probation``."""
        session = self.begin_query(query)
        return self.what_if_optimize(session, probation)

    def _cost_under(self, session: WhatIfSession, config: IndexConfig) -> float:
        if config == session.base.config:
            return session.base.cost
        return self._optimizer.optimize(
            session.query, config=config, cache=session.cache
        ).cost
