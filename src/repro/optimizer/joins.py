"""Selinger-style dynamic-programming join enumeration.

Plans are built bottom-up over connected subsets of the join graph.  For
each way of splitting a subset into two connected halves joined by at
least one equi-join edge, three physical operators are considered:

* **Hash join** -- build on the smaller side, with a spill penalty when
  the build side exceeds the hash workspace.
* **Index nested loop** -- when the inner side is a single base relation
  with an available index on its join column.
* **Materialized nested loop** -- the quadratic fallback, only attractive
  for tiny inputs.

Cardinalities are computed per subset (independent of the plan shape)
from filtered base cardinalities and per-edge join selectivities.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.engine.catalog import Catalog
from repro.optimizer.access import IndexConfig, parameterized_index_path
from repro.optimizer.plan import (
    HashJoinNode,
    IndexScanNode,
    NestedLoopNode,
    PlanNode,
)
from repro.optimizer.selectivity import combined_selectivity, join_selectivity
from repro.sql.ast import JoinPredicate, Query


class JoinPlanner:
    """Enumerates join orders for one query under one index configuration."""

    def __init__(self, catalog: Catalog, query: Query, config: IndexConfig) -> None:
        self._catalog = catalog
        self._query = query
        self._config = config
        self._tables = list(query.tables)
        self._index_of = {t: i for i, t in enumerate(self._tables)}
        self._filtered_rows = {
            t: max(
                1.0,
                catalog.table(t).row_count
                * combined_selectivity(catalog, query.filters_on(t)),
            )
            for t in self._tables
        }

    def plan(self, access_paths: Dict[str, PlanNode]) -> PlanNode:
        """Find the cheapest join plan given per-relation access paths.

        Args:
            access_paths: Best unparameterized access path per table.

        Returns:
            The cheapest plan covering all tables in the query.

        Raises:
            ValueError: if the query references no tables.
        """
        n = len(self._tables)
        if n == 0:
            raise ValueError("query references no tables")
        if n == 1:
            return access_paths[self._tables[0]]

        best: Dict[int, PlanNode] = {}
        for i, table in enumerate(self._tables):
            best[1 << i] = access_paths[table]

        full = (1 << n) - 1
        for size in range(2, n + 1):
            for subset in _subsets_of_size(n, size):
                plan = self._best_for_subset(subset, best)
                if plan is not None:
                    best[subset] = plan
        if full not in best:
            # Disconnected join graph: fall back to a left-deep cartesian
            # chain over the connected components' best plans.
            return self._cartesian_fallback(best, n)
        return best[full]

    # ------------------------------------------------------------------
    def _best_for_subset(
        self, subset: int, best: Dict[int, PlanNode]
    ) -> Optional[PlanNode]:
        result: Optional[PlanNode] = None
        rows = self._subset_rows(subset)
        # Enumerate proper, non-empty splits; iterate left halves only
        # once via the standard submask trick.
        left = (subset - 1) & subset
        while left:
            right = subset ^ left
            if left in best and right in best:
                edges = self._edges_between(left, right)
                if edges:
                    for candidate in self._join_candidates(
                        best[left], best[right], edges, right, rows
                    ):
                        if result is None or candidate.cost < result.cost:
                            result = candidate
            left = (left - 1) & subset
        return result

    def _join_candidates(
        self,
        outer: PlanNode,
        inner: PlanNode,
        edges: List[JoinPredicate],
        inner_mask: int,
        rows: float,
    ) -> List[PlanNode]:
        params = self._catalog.params
        candidates: List[PlanNode] = []

        # Hash join: build on the smaller input.
        probe, build = (outer, inner) if outer.rows >= inner.rows else (inner, outer)
        build_pages = params.heap_pages(build.rows, 32)
        spill_factor = max(1.0, math.ceil(build_pages / params.hash_mem_pages))
        hash_cost = (
            probe.cost
            + build.cost
            + build.rows * params.cpu_tuple_cost * 1.5
            + probe.rows * params.cpu_tuple_cost
            + (probe.rows + build.rows) * len(edges) * params.cpu_operator_cost
            + (spill_factor - 1.0) * build_pages * 2.0 * params.seq_page_cost
        )
        candidates.append(
            HashJoinNode(rows=rows, cost=hash_cost, probe=probe, build=build, joins=edges)
        )

        # Index nested loop: inner must be one base relation with an index
        # on (one of) the join columns.
        inlj = self._index_nested_loop(outer, inner_mask, edges, rows)
        if inlj is not None:
            candidates.append(inlj)

        # Materialized nested loop (both inputs computed once).
        nl_cost = (
            outer.cost
            + inner.cost
            + outer.rows * inner.rows * len(edges) * params.cpu_operator_cost
            + outer.rows * inner.rows * params.cpu_tuple_cost * 0.1
        )
        candidates.append(
            NestedLoopNode(rows=rows, cost=nl_cost, outer=outer, inner=inner, joins=edges)
        )
        return candidates

    def _index_nested_loop(
        self,
        outer: PlanNode,
        inner_mask: int,
        edges: List[JoinPredicate],
        rows: float,
    ) -> Optional[NestedLoopNode]:
        if _popcount(inner_mask) != 1:
            return None
        inner_table = self._tables[inner_mask.bit_length() - 1]
        params = self._catalog.params
        best: Optional[NestedLoopNode] = None
        for edge in edges:
            if edge.left.table == inner_table:
                inner_col, outer_col = edge.left.column, edge.right
            elif edge.right.table == inner_table:
                inner_col, outer_col = edge.right.column, edge.left
            else:  # pragma: no cover - edges are pre-filtered
                continue
            inner_path = parameterized_index_path(
                self._catalog,
                inner_table,
                self._query.filters_on(inner_table),
                inner_col,
                outer_col,
                self._config,
            )
            if inner_path is None:
                continue
            cost = (
                outer.cost
                + outer.rows * inner_path.cost
                + outer.rows * params.cpu_tuple_cost
            )
            node = NestedLoopNode(
                rows=rows, cost=cost, outer=outer, inner=inner_path, joins=edges
            )
            if best is None or node.cost < best.cost:
                best = node
        return best

    def _edges_between(self, left: int, right: int) -> List[JoinPredicate]:
        edges = []
        for join in self._query.joins:
            li = self._index_of[join.left.table]
            ri = self._index_of[join.right.table]
            lbit, rbit = 1 << li, 1 << ri
            if (lbit & left and rbit & right) or (lbit & right and rbit & left):
                edges.append(join)
        return edges

    def _subset_rows(self, subset: int) -> float:
        rows = 1.0
        for i, table in enumerate(self._tables):
            if subset & (1 << i):
                rows *= self._filtered_rows[table]
        for join in self._query.joins:
            li = self._index_of[join.left.table]
            ri = self._index_of[join.right.table]
            if subset & (1 << li) and subset & (1 << ri):
                rows *= join_selectivity(self._catalog, join)
        return max(1.0, rows)

    def _cartesian_fallback(self, best: Dict[int, PlanNode], n: int) -> PlanNode:
        params = self._catalog.params
        covered = 0
        plan: Optional[PlanNode] = None
        # Greedily absorb the largest solved subsets first.
        for subset in sorted(best, key=_popcount, reverse=True):
            if subset & covered:
                continue
            piece = best[subset]
            if plan is None:
                plan = piece
            else:
                rows = plan.rows * piece.rows
                cost = (
                    plan.cost
                    + piece.cost
                    + rows * params.cpu_tuple_cost * 0.1
                )
                plan = NestedLoopNode(
                    rows=rows, cost=cost, outer=plan, inner=piece, joins=[]
                )
            covered |= subset
            if covered == (1 << n) - 1:
                break
        assert plan is not None
        return plan


def _subsets_of_size(n: int, size: int):
    """All bitmasks over ``n`` elements with ``size`` bits set."""
    subset = (1 << size) - 1
    limit = 1 << n
    while subset < limit:
        yield subset
        # Gosper's hack: next subset with the same popcount.
        low = subset & -subset
        ripple = subset + low
        subset = ripple | (((subset ^ ripple) >> 2) // low)


def _popcount(mask: int) -> int:
    return bin(mask).count("1")


def uses_parameterized_inner(plan: PlanNode) -> bool:
    """Whether any nested loop in the plan drives a parameterized scan."""
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, NestedLoopNode) and isinstance(node.inner, IndexScanNode):
            if node.inner.parameterized_by is not None:
                return True
        stack.extend(node.children())
    return False
