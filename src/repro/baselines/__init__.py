"""Baseline tuners the paper compares against (or improves on).

``OFFLINE`` is the paper's idealized off-line technique: it has complete
knowledge of the workload and unlimited processing time, and exhaustively
searches the space of single-column index sets within the storage budget,
evaluating each configuration with the same what-if optimizer COLT uses.
Within the single-column setting it therefore strictly dominates
heuristic off-line tools.

``ContinuousTuner`` is a QUIET-style unregulated on-line tuner modelling
the prior work (§1) whose uncontrolled what-if overhead COLT's
re-budgeting was designed to fix.
"""

from repro.baselines.continuous import ContinuousConfig, ContinuousTuner
from repro.baselines.offline import OfflineResult, OfflineTuner

__all__ = [
    "ContinuousConfig",
    "ContinuousTuner",
    "OfflineResult",
    "OfflineTuner",
]
