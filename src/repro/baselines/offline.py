"""The OFFLINE baseline (§6.1).

Given the *exact* workload in advance, OFFLINE finds the single-column
index set that minimizes total workload cost within the storage budget,
using the same optimizer COLT profiles with.  Index selection and
materialization are assumed to happen before the workload runs and cost
nothing (they are off-line).

Exhaustive search is made tractable by a decomposition that loses no
precision: a query's cost depends only on the candidate indexes *relevant
to it* (same tables, referenced columns).  Queries are grouped by their
relevant-index set; for each group we precompute the total group cost
under every subset of its relevant indexes (at most ``2^k`` for small
``k``).  The cost of a full configuration ``S`` is then a sum of ``G``
table lookups instead of ``|W|`` optimizations, and branch-and-bound over
the candidate lattice finds the exact optimum.

For candidate sets too large to enumerate, a greedy mode (repeatedly add
the index with the best marginal gain per page) is provided; the paper's
experiments stay within exhaustive range (18 candidates).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.optimizer.optimizer import Optimizer, PlanCache
from repro.sql.ast import Query

MAX_EXHAUSTIVE_CANDIDATES = 22
MAX_GROUP_RELEVANT = 12


@dataclasses.dataclass
class OfflineResult:
    """Outcome of off-line tuning.

    Attributes:
        indexes: The chosen index set.
        total_cost: Total workload cost under the chosen set.
        baseline_cost: Total workload cost with no extra indexes.
        configurations_examined: Search-space size actually visited.
    """

    indexes: List[IndexDef]
    total_cost: float
    baseline_cost: float
    configurations_examined: int


class OfflineTuner:
    """Exhaustive (or greedy) off-line single-column index selection."""

    def __init__(
        self,
        catalog: Catalog,
        strategy: str = "exhaustive",
    ) -> None:
        if strategy not in ("exhaustive", "greedy"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self._catalog = catalog
        self._strategy = strategy
        self._optimizer = Optimizer(catalog)

    def tune(
        self,
        workload: Sequence[Query],
        budget_pages: float,
        candidates: Optional[Sequence[IndexDef]] = None,
    ) -> OfflineResult:
        """Select the optimal index set for a known workload.

        Args:
            workload: The exact query sequence (bound queries).
            budget_pages: Storage budget ``B`` in pages.
            candidates: Candidate indexes; defaults to every indexable
                column referenced by a selection or join predicate in
                the workload.

        Returns:
            The chosen configuration and its workload cost.
        """
        pool = list(candidates) if candidates is not None else self._mine(workload)
        pool = [
            ix
            for ix in pool
            if self._catalog.index_size_pages(ix) <= budget_pages
        ]
        groups = self._group_costs(workload, pool)
        baseline = sum(g.cost_of(frozenset()) for g in groups)

        if (
            self._strategy == "exhaustive"
            and len(pool) <= MAX_EXHAUSTIVE_CANDIDATES
        ):
            chosen, cost, examined = self._search(groups, pool, budget_pages, baseline)
        else:
            chosen, cost, examined = self._greedy(groups, pool, budget_pages, baseline)
        return OfflineResult(
            indexes=sorted(chosen, key=str),
            total_cost=cost,
            baseline_cost=baseline,
            configurations_examined=examined,
        )

    # ------------------------------------------------------------------
    def _mine(self, workload: Sequence[Query]) -> List[IndexDef]:
        seen = {}
        for query in workload:
            for col in query.selection_columns() + query.join_columns():
                if self._catalog.table(col.table).column(col.column).indexable:
                    seen[(col.table, col.column)] = True
        return [self._catalog.index_for(t, c) for (t, c) in sorted(seen)]

    def _group_costs(
        self, workload: Sequence[Query], pool: Sequence[IndexDef]
    ) -> List["_QueryGroup"]:
        pool_set = set(pool)
        groups: Dict[FrozenSet[IndexDef], _QueryGroup] = {}
        for query in workload:
            relevant = frozenset(
                ix
                for ix in self._relevant(query)
                if ix in pool_set
            )
            group = groups.get(relevant)
            if group is None:
                group = _QueryGroup(relevant, self._optimizer)
                groups[relevant] = group
            group.queries.append(query)
        for group in groups.values():
            group.precompute()
        return list(groups.values())

    def _relevant(self, query: Query) -> List[IndexDef]:
        seen = {}
        for col in query.selection_columns() + query.join_columns():
            seen[(col.table, col.column)] = True
        return [self._catalog.index_for(t, c) for (t, c) in seen]

    # ------------------------------------------------------------------
    def _search(
        self,
        groups: List["_QueryGroup"],
        pool: List[IndexDef],
        budget: float,
        baseline: float,
    ) -> Tuple[List[IndexDef], float, int]:
        """Exact branch-and-bound over subsets of the pool."""
        sizes = [self._catalog.index_size_pages(ix) for ix in pool]
        # Per-index best-case gain (against the empty configuration)
        # upper-bounds any marginal contribution; used for pruning.
        solo_gain = []
        for ix in pool:
            gain = 0.0
            for g in groups:
                if ix in g.relevant:
                    gain += g.cost_of(frozenset()) - g.cost_of(frozenset([ix]))
            solo_gain.append(max(0.0, gain))

        order = sorted(
            range(len(pool)), key=lambda i: solo_gain[i], reverse=True
        )
        # suffix_bound[k]: the most any selection drawn from order[k:]
        # could still gain (sum of solo gains, which upper-bound marginal
        # gains because index benefits never increase when combined with
        # more indexes in this engine).
        suffix_bound = [0.0] * (len(order) + 1)
        for k in range(len(order) - 1, -1, -1):
            suffix_bound[k] = suffix_bound[k + 1] + solo_gain[order[k]]

        best_cost = baseline
        best_set: Tuple[int, ...] = ()
        examined = 0

        def cost_of(selection: Tuple[int, ...]) -> float:
            chosen = frozenset(pool[i] for i in selection)
            return sum(g.cost_of(chosen & g.relevant) for g in groups)

        def dfs(pos: int, selection: Tuple[int, ...], used: float, cost: float):
            nonlocal best_cost, best_set, examined
            if cost < best_cost - 1e-9:
                best_cost = cost
                best_set = selection
            for nxt in range(pos, len(order)):
                i = order[nxt]
                if used + sizes[i] > budget:
                    continue
                if cost - suffix_bound[nxt] >= best_cost:
                    break  # later positions have even smaller bounds
                examined += 1
                extended = selection + (i,)
                dfs(nxt + 1, extended, used + sizes[i], cost_of(extended))

        examined += 1
        dfs(0, (), 0.0, baseline)
        return [pool[i] for i in best_set], best_cost, examined

    def _greedy(
        self,
        groups: List["_QueryGroup"],
        pool: List[IndexDef],
        budget: float,
        baseline: float,
    ) -> Tuple[List[IndexDef], float, int]:
        chosen: List[IndexDef] = []
        used = 0.0
        current = baseline
        examined = 0
        remaining = list(pool)
        while True:
            best_ix = None
            best_cost = current
            for ix in remaining:
                size = self._catalog.index_size_pages(ix)
                if used + size > budget:
                    continue
                examined += 1
                trial = frozenset(chosen + [ix])
                cost = sum(g.cost_of(trial & g.relevant) for g in groups)
                if cost < best_cost - 1e-9:
                    best_cost = cost
                    best_ix = ix
            if best_ix is None:
                break
            chosen.append(best_ix)
            remaining.remove(best_ix)
            used += self._catalog.index_size_pages(best_ix)
            current = best_cost
        return chosen, current, examined


class _QueryGroup:
    """Queries sharing one relevant-index set, with precomputed costs."""

    def __init__(self, relevant: FrozenSet[IndexDef], optimizer: Optimizer) -> None:
        self.relevant = relevant
        self.queries: List[Query] = []
        self._optimizer = optimizer
        self._costs: Dict[FrozenSet[IndexDef], float] = {}

    def precompute(self) -> None:
        """Total group cost under every subset of the relevant indexes.

        Groups with very wide relevant sets (rare) fall back to lazy
        evaluation to avoid exponential precomputation.
        """
        if len(self.relevant) > MAX_GROUP_RELEVANT:
            return
        members = sorted(self.relevant, key=str)
        for r in range(len(members) + 1):
            for combo in itertools.combinations(members, r):
                self._compute(frozenset(combo))

    def cost_of(self, subset: FrozenSet[IndexDef]) -> float:
        """Total cost of the group's queries under ``subset``."""
        if subset not in self._costs:
            self._compute(subset)
        return self._costs[subset]

    def _compute(self, subset: FrozenSet[IndexDef]) -> None:
        total = 0.0
        for query in self.queries:
            cache = PlanCache()
            total += self._optimizer.optimize(query, config=subset, cache=cache).cost
        self._costs[subset] = total
