"""A QUIET-style continuous on-line tuner (the prior-work model).

The paper positions COLT against earlier on-line index tuners (QUIET
[17], Cache Investment [13], Hammer & Chan [12]) that share a simple
working model: watch the workload, estimate candidate index benefits
through what-if optimization, and materialize an index once its
*accumulated* observed benefit exceeds its build cost.  Crucially, these
systems have **no mechanism to regulate what-if usage** -- they profile
with the same intensity whether or not the system can be tuned any
better, which is exactly the overhead problem COLT's re-budgeting
solves.

This module implements that model faithfully enough to serve as an
experimental comparator:

* every query triggers what-if calls for **all** relevant candidate
  indexes (no budget, no sampling, no clustering);
* per-index benefits accumulate with exponential decay (so old evidence
  ages out and the tuner can adapt to shifts);
* an index is materialized when its decayed accumulated benefit exceeds
  ``adoption_factor`` times its build cost, subject to the storage
  budget (evicting the lowest-credit indexes if needed);
* a materialized index whose credit decays below ``retirement_factor``
  times its build cost is dropped.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.engine.catalog import Catalog
from repro.engine.index import IndexDef
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.plan import PlanNode
from repro.optimizer.whatif import WhatIfOptimizer
from repro.sql.ast import Query

IndexKey = Tuple[str, str]


@dataclasses.dataclass(frozen=True)
class ContinuousConfig:
    """Parameters of the QUIET-style tuner.

    Attributes:
        storage_budget_pages: Storage budget shared with COLT runs.
        decay: Per-query multiplicative decay of accumulated credit
            (memory comparable to COLT's ``w * h`` queries at ~0.99).
        adoption_factor: Multiple of the build cost the accumulated
            credit must reach before materialization.
        retirement_factor: Credit floor (as a multiple of build cost)
            below which a materialized index is dropped.
        whatif_call_cost: Ledger charge per what-if call (same unit as
            ``ColtConfig.whatif_call_cost``).
    """

    storage_budget_pages: float = 9_000.0
    decay: float = 0.99
    adoption_factor: float = 1.0
    retirement_factor: float = 0.1
    whatif_call_cost: float = 10.0


@dataclasses.dataclass
class ContinuousOutcome:
    """Ledger record for one query processed by the continuous tuner."""

    index: int
    execution_cost: float
    whatif_calls: int
    whatif_overhead: float
    build_cost: float
    total_cost: float
    plan: PlanNode


class ContinuousTuner:
    """The unregulated continuous tuner (QUIET-style baseline)."""

    def __init__(
        self, catalog: Catalog, config: Optional[ContinuousConfig] = None
    ) -> None:
        self.catalog = catalog
        self.config = config or ContinuousConfig()
        self.optimizer = Optimizer(catalog)
        self.whatif = WhatIfOptimizer(self.optimizer)
        self._credit: Dict[IndexKey, float] = {}
        self._queries = 0

    @property
    def materialized_set(self) -> List[IndexDef]:
        """The currently materialized indexes."""
        return sorted(self.catalog.materialized_indexes(), key=str)

    # ------------------------------------------------------------------
    def process_query(self, query: Query) -> ContinuousOutcome:
        """Optimize, profile every relevant candidate, maybe materialize."""
        session = self.whatif.begin_query(query)
        calls_before = self.whatif.call_count

        self._decay_credit()
        candidates = self._relevant_candidates(query)
        if candidates:
            gains = self.whatif.what_if_optimize(session, candidates)
            for index, gain in gains.items():
                key = (index.table, index.column)
                self._credit[key] = self._credit.get(key, 0.0) + max(0.0, gain)

        build_cost = self._reorganize()

        calls = self.whatif.call_count - calls_before
        overhead = calls * self.config.whatif_call_cost
        self._queries += 1
        return ContinuousOutcome(
            index=self._queries - 1,
            execution_cost=session.base.cost,
            whatif_calls=calls,
            whatif_overhead=overhead,
            build_cost=build_cost,
            total_cost=session.base.cost + overhead + build_cost,
            plan=session.base.plan,
        )

    def run(self, queries) -> List[ContinuousOutcome]:
        """Process a sequence of queries."""
        return [self.process_query(q) for q in queries]

    # ------------------------------------------------------------------
    def _relevant_candidates(self, query: Query) -> List[IndexDef]:
        seen: Dict[IndexKey, IndexDef] = {}
        for col in query.selection_columns() + query.join_columns():
            if not self.catalog.table(col.table).column(col.column).indexable:
                continue
            key = (col.table, col.column)
            if key not in seen:
                seen[key] = self.catalog.index_for(col.table, col.column)
        return list(seen.values())

    def _decay_credit(self) -> None:
        decay = self.config.decay
        for key in list(self._credit):
            self._credit[key] *= decay
            if self._credit[key] < 1e-9:
                del self._credit[key]

    def _reorganize(self) -> float:
        """Adopt over-threshold candidates; retire decayed incumbents."""
        build_cost = 0.0

        # Retirement first, freeing space.
        for index in self.catalog.materialized_indexes():
            key = (index.table, index.column)
            floor = self.config.retirement_factor * self.catalog.index_build_cost(index)
            if self._credit.get(key, 0.0) < floor:
                self.catalog.drop_index(index)

        # Adoption, richest candidates first.
        hopefuls = sorted(
            (
                (credit, key)
                for key, credit in self._credit.items()
                if not self.catalog.is_materialized(
                    self.catalog.index_for(*key)
                )
            ),
            reverse=True,
        )
        for credit, key in hopefuls:
            index = self.catalog.index_for(*key)
            threshold = self.config.adoption_factor * self.catalog.index_build_cost(index)
            if credit < threshold:
                break  # sorted descending: nothing later qualifies either
            if not self._fits_with_eviction(index):
                continue
            build_cost += self.catalog.index_build_cost(index)
            self.catalog.materialize_index(index)
        return build_cost

    def _fits_with_eviction(self, index: IndexDef) -> bool:
        """Make room by evicting lower-credit incumbents if possible."""
        budget = self.config.storage_budget_pages
        size = self.catalog.index_size_pages(index)
        if size > budget:
            return False
        used = self.catalog.materialized_size_pages()
        if used + size <= budget:
            return True
        key = (index.table, index.column)
        credit = self._credit.get(key, 0.0)
        incumbents = sorted(
            self.catalog.materialized_indexes(),
            key=lambda ix: self._credit.get((ix.table, ix.column), 0.0),
        )
        for victim in incumbents:
            victim_credit = self._credit.get((victim.table, victim.column), 0.0)
            if victim_credit >= credit:
                return False  # cannot evict a better incumbent
            self.catalog.drop_index(victim)
            used -= self.catalog.index_size_pages(victim)
            if used + size <= budget:
                return True
        return used + size <= budget
