"""Full-stack demo: COLT tuning real queries on real data.

Unlike the cost-model simulations, this example populates physical
TPC-H-style heaps (sampled down, with paper-scale statistics), attaches
the tuner to the physical store so that materializations build real
B+trees, and executes a query before and after tuning -- printing the
plans, the timings, and (identical) results both ways.

Run with::

    python examples/physical_execution.py
"""

from __future__ import annotations

import time

from repro import ColtConfig, ColtTuner, bind_query, execute, explain, parse_query
from repro.optimizer.optimizer import Optimizer
from repro.workload import build_physical
from repro.workload.experiments import stable_distribution
from repro.workload.phases import stable_workload


def run_and_time(catalog, store, query):
    optimizer = Optimizer(catalog)
    plan = optimizer.optimize(query).plan
    started = time.perf_counter()
    rows = execute(plan, store)
    elapsed = (time.perf_counter() - started) * 1000
    return plan, rows, elapsed


def main() -> None:
    print("generating physical data (2 instances at 0.5% scale)...")
    store = build_physical(instances=2, scale=0.005, seed=11)
    catalog = store.catalog

    probe = bind_query(
        parse_query(
            "select l_orderkey, l_extendedprice from lineitem_1 "
            "where l_shipdate between '1994-03-01' and '1994-03-04' "
            "order by l_extendedprice desc limit 5"
        ),
        catalog,
    )

    print("\n--- before tuning ---")
    plan, rows, ms = run_and_time(catalog, store, probe)
    print(explain(plan))
    print(f"executed in {ms:.2f} ms, {len(rows)} rows: {rows[:3]}...")

    print("\nstreaming 200 workload queries through COLT "
          "(indexes are built physically)...")
    tuner = ColtTuner(
        catalog,
        ColtConfig(storage_budget_pages=9_000.0),
        store=store,
    )
    workload = stable_workload(stable_distribution(), 200, catalog, seed=5)
    for query in workload.queries:
        tuner.process_query(query)
    print("materialized:", ", ".join(ix.name for ix in tuner.materialized_set))

    print("\n--- after tuning ---")
    plan2, rows2, ms2 = run_and_time(catalog, store, probe)
    print(explain(plan2))
    print(f"executed in {ms2:.2f} ms, {len(rows2)} rows")

    assert rows == rows2, "tuning must never change query results"
    print("\nresults identical before and after tuning; "
          f"wall-clock {ms:.2f} ms -> {ms2:.2f} ms")


if __name__ == "__main__":
    main()
