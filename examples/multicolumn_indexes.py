"""Multi-column indexes: running the paper's future work.

§2 of the paper limits COLT to single-column indexes and names
multi-column indexes as the interesting extension.  This example turns
the extension on (``ColtConfig(composite_candidates=True)``) for a
workload of conjunctive queries -- "orders of one supplier within a
shipping window" -- where a (supplier, ship-date) composite absorbs both
predicates at once.

Run with::

    python examples/multicolumn_indexes.py
"""

from __future__ import annotations

from repro.bench.harness import run_colt
from repro.core import ColtConfig
from repro.workload import build_catalog
from repro.workload.phases import stable_workload
from repro.workload.querygen import (
    PredicateSpec,
    QueryDistribution,
    QueryTemplate,
)

BUDGET = 12_000.0

SUPPLIER_WINDOWS = QueryDistribution(
    name="supplier-windows",
    templates=(
        QueryTemplate(
            predicates=(
                # "one supplier" -- an equality on a 2,000-value domain
                PredicateSpec("lineitem_1", "l_suppkey", (1e-7, 1e-7)),
                # "within a quarter or so" -- a wide date range
                PredicateSpec("lineitem_1", "l_shipdate", (0.05, 0.25)),
            ),
            weight=1.0,
        ),
    ),
)


def run(composite: bool):
    catalog = build_catalog()
    workload = stable_workload(SUPPLIER_WINDOWS, 300, catalog, seed=7)
    config = ColtConfig(
        storage_budget_pages=BUDGET, composite_candidates=composite
    )
    return run_colt(build_catalog(), workload.queries, config)


def main() -> None:
    print("workload: pick a supplier, scan their lineitems in a date window\n")
    single = run(composite=False)
    multi = run(composite=True)

    tail = 150
    single_cost = sum(single.execution_costs[tail:])
    multi_cost = sum(multi.execution_costs[tail:])
    print("single-column COLT (the paper's setting):")
    for ix in single.final_materialized:
        print(f"  {ix.name}")
    print(f"  steady-state cost: {single_cost:,.0f}\n")

    print("composite-enabled COLT (the future-work extension):")
    for ix in multi.final_materialized:
        marker = "  <-- two-column" if ix.is_composite else ""
        print(f"  {ix.name}{marker}")
    print(f"  steady-state cost: {multi_cost:,.0f}\n")

    print(
        f"the composite configuration runs the same queries at "
        f"{multi_cost / single_cost:.2f}x the single-column cost "
        f"({(1 - multi_cost / single_cost) * 100:.0f}% cheaper)."
    )


if __name__ == "__main__":
    main()
