"""Quickstart: continuous on-line index tuning in sixty lines.

Builds the paper's TPC-H-style catalog (statistics only -- no physical
rows needed for cost-model tuning), streams a repetitive query workload
through the COLT tuner, and shows the tuner discovering, profiling, and
materializing the indexes the workload rewards.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import ColtConfig, ColtTuner, bind_query, parse_query
from repro.workload import build_catalog


def make_query(catalog, rng: random.Random):
    """A TPC-H-flavoured shipping-window query with random parameters."""
    start = rng.randint(8035, 10500)  # ordinal days within 1992-1998
    sql = (
        "select l_orderkey, l_extendedprice from lineitem_1 "
        f"where l_shipdate between {start} and {start + 10}"
    )
    return bind_query(parse_query(sql), catalog)


def main() -> None:
    rng = random.Random(7)
    catalog = build_catalog()
    tuner = ColtTuner(catalog, ColtConfig(storage_budget_pages=9_000.0))

    print("processing 120 queries through COLT...\n")
    window: list[float] = []
    for i in range(120):
        outcome = tuner.process_query(make_query(catalog, rng))
        window.append(outcome.total_cost)
        if outcome.epoch_ended and outcome.reorganization.materialize:
            names = [ix.name for ix in outcome.reorganization.materialize]
            print(f"query {i + 1:4d}: materialized {', '.join(names)}")
        if len(window) == 30:
            mean = sum(window) / len(window)
            print(f"query {i + 1:4d}: mean cost over last 30 queries = {mean:,.0f}")
            window.clear()

    print("\nfinal materialized set:")
    for index in tuner.materialized_set:
        pages = catalog.index_size_pages(index)
        print(f"  {index.name}  (~{pages:,.0f} pages)")
    print(f"\nwhat-if calls used in total: {tuner.whatif.call_count}")


if __name__ == "__main__":
    main()
