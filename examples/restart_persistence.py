"""Surviving a restart: snapshot and restore the tuner's learned state.

A continuous tuner that forgets everything on restart re-pays the whole
learning period -- monitoring, profiling, index builds.  This example
trains COLT on a workload, snapshots it to JSON, simulates a server
restart (fresh catalog, no indexes), restores, and shows that the
restored tuner resumes exactly where it left off: same configuration,
no rebuilds, immediately cheap queries.

Run with::

    python examples/restart_persistence.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import ColtConfig, ColtTuner
from repro.persist import load_json, restore_tuner, save_json, snapshot_tuner
from repro.workload import build_catalog
from repro.workload.experiments import stable_distribution
from repro.workload.phases import stable_workload

BUDGET = 9_000.0


def mean_cost(tuner, queries) -> float:
    return sum(tuner.process_query(q).total_cost for q in queries) / len(queries)


def main() -> None:
    catalog = build_catalog()
    distribution = stable_distribution()
    train = stable_workload(distribution, 200, catalog, seed=1)
    probe = stable_workload(distribution, 50, catalog, seed=2)

    print("training COLT on 200 queries...")
    tuner = ColtTuner(catalog, ColtConfig(storage_budget_pages=BUDGET))
    for query in train.queries:
        tuner.process_query(query)
    trained_cost = mean_cost(tuner, probe.queries)
    print(f"  configuration: {[ix.name for ix in tuner.materialized_set]}")
    print(f"  mean query cost when trained: {trained_cost:,.0f}")

    with tempfile.TemporaryDirectory() as tmp:
        state_file = Path(tmp) / "colt_state.json"
        save_json(state_file, snapshot_tuner(tuner))
        print(f"\nsnapshot written: {state_file.stat().st_size:,} bytes")

        print("\n--- simulated restart (cold tuner, no state) ---")
        cold = ColtTuner(build_catalog(), ColtConfig(storage_budget_pages=BUDGET))
        cold_cost = mean_cost(cold, probe.queries)
        print(f"  mean query cost right after restart: {cold_cost:,.0f}")

        print("\n--- simulated restart (restored from snapshot) ---")
        warm = restore_tuner(build_catalog(), load_json(state_file))
        warm_cost = mean_cost(warm, probe.queries)
        print(f"  configuration: {[ix.name for ix in warm.materialized_set]}")
        print(f"  mean query cost after restore: {warm_cost:,.0f}")

    print(
        f"\ncold restart costs {cold_cost / trained_cost:.1f}x the trained rate; "
        f"restored state runs at {warm_cost / trained_cost:.2f}x immediately."
    )


if __name__ == "__main__":
    main()
