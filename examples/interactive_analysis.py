"""Interactive data analysis: the workload the paper's introduction motivates.

An analyst explores hypotheses against the database.  Queries related to
one hypothesis share characteristics (the "locally dominant patterns"
of §1); when the analyst moves on, the pattern shifts.  An off-line
tuner sees only the global average; COLT re-tunes for each
investigation phase.

The script replays a three-phase exploration session through both COLT
and the idealized OFFLINE baseline and prints a per-phase scoreboard.

Run with::

    python examples/interactive_analysis.py
"""

from __future__ import annotations

from repro.bench.harness import run_colt, run_offline
from repro.core import ColtConfig
from repro.workload import build_catalog, shifting_workload
from repro.workload.querygen import PredicateSpec, QueryDistribution, QueryTemplate

BUDGET_PAGES = 7_000.0
PHASE_LENGTH = 200

# Hypothesis 1: "were late shipments clustered in specific weeks?"
SHIPPING_DELAYS = QueryDistribution(
    name="shipping-delays",
    templates=(
        QueryTemplate(
            predicates=(PredicateSpec("lineitem_1", "l_shipdate", (0.001, 0.008)),),
            weight=3.0,
        ),
        QueryTemplate(
            predicates=(PredicateSpec("lineitem_1", "l_receiptdate", (0.001, 0.008)),),
            weight=2.0,
        ),
    ),
)

# Hypothesis 2: "do big orders come from a few customers?"
BIG_SPENDERS = QueryDistribution(
    name="big-spenders",
    templates=(
        QueryTemplate(
            predicates=(PredicateSpec("orders_1", "o_orderdate", (0.001, 0.008)),),
            weight=2.0,
        ),
        QueryTemplate(
            predicates=(PredicateSpec("orders_1", "o_totalprice", (0.0002, 0.002)),),
            weight=2.0,
        ),
    ),
)

# Hypothesis 3: "how do supply costs look for the second product line?"
SUPPLY_COSTS = QueryDistribution(
    name="supply-costs",
    templates=(
        QueryTemplate(
            predicates=(PredicateSpec("partsupp_2", "ps_supplycost", (0.0002, 0.002)),),
            weight=2.0,
        ),
        QueryTemplate(
            predicates=(PredicateSpec("lineitem_2", "l_shipdate", (0.001, 0.008)),),
            weight=2.0,
        ),
    ),
)


def main() -> None:
    catalog = build_catalog()
    session = shifting_workload(
        [SHIPPING_DELAYS, BIG_SPENDERS, SUPPLY_COSTS],
        catalog,
        phase_length=PHASE_LENGTH,
        transition=20,
        seed=4,
    )
    print(f"analysis session: {session.description}\n")

    colt = run_colt(
        build_catalog(), session.queries, ColtConfig(storage_budget_pages=BUDGET_PAGES)
    )
    offline = run_offline(build_catalog(), session.queries, BUDGET_PAGES)

    print(f"{'phase':<18} {'COLT cost':>14} {'OFFLINE cost':>14} {'winner':>9}")
    phases = ["shipping-delays", "big-spenders", "supply-costs"]
    stride = PHASE_LENGTH + 20  # phase plus its trailing transition
    for i, label in enumerate(phases):
        start = i * stride
        end = min(len(session), start + stride)
        colt_cost = sum(colt.total_costs[start:end])
        off_cost = sum(offline.per_query_costs[start:end])
        winner = "COLT" if colt_cost < off_cost else "OFFLINE"
        print(f"{label:<18} {colt_cost:>14,.0f} {off_cost:>14,.0f} {winner:>9}")

    total_colt = colt.total_cost
    total_off = offline.total_cost
    print(
        f"\ntotal: COLT {total_colt:,.0f} vs OFFLINE {total_off:,.0f} "
        f"({(1 - total_colt / total_off) * 100:+.1f}% for COLT)"
    )
    print("\nCOLT's configuration at session end:")
    for index in colt.final_materialized:
        print(f"  {index.name}")
    print("\nOFFLINE's single global configuration:")
    for index in offline.result.indexes:
        print(f"  {index.name}")


if __name__ == "__main__":
    main()
