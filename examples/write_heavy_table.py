"""Write-aware tuning: an index has to earn its upkeep.

An append-heavy events table serves the same read queries as a quiet
archive table.  Classic read-only index selection would index both; a
write-aware tuner recognizes that on the hot table every insert pays a
maintenance toll per index, and keeps the index only where the reads
outweigh the writes.

Run with::

    python examples/write_heavy_table.py
"""

from __future__ import annotations

import random

from repro.core import ColtConfig, ColtTuner
from repro.engine.catalog import Catalog, ColumnDef, TableDef
from repro.engine.datatypes import DataType
from repro.engine.stats import ColumnStats
from repro.sql.ast import (
    ColumnExpr,
    CompareOp,
    ComparisonPredicate,
    Query,
    SelectItem,
)


def build_catalog() -> Catalog:
    catalog = Catalog()
    for name in ("live_events", "archive_events"):
        catalog.add_table(
            TableDef(
                name,
                [
                    ColumnDef("device_id", DataType.INT),
                    ColumnDef("reading", DataType.FLOAT),
                ],
                row_count=2_000_000,
            )
        )
        catalog.set_stats(
            name,
            "device_id",
            ColumnStats(n_distinct=50_000, min_value=1, max_value=50_000),
        )
        catalog.set_stats(
            name,
            "reading",
            ColumnStats(n_distinct=2_000_000, min_value=0.0, max_value=100.0),
        )
    return catalog


def lookup(table: str, device: int) -> Query:
    return Query(
        tables=[table],
        select=[SelectItem(expr=ColumnExpr("reading", table))],
        filters=[
            ComparisonPredicate(
                ColumnExpr("device_id", table), CompareOp.EQ, device
            )
        ],
    )


def main() -> None:
    catalog = build_catalog()
    tuner = ColtTuner(
        catalog,
        ColtConfig(storage_budget_pages=20_000.0, min_history_epochs=2),
    )
    rng = random.Random(0)

    print(
        "identical lookup traffic on two tables; live_events also absorbs\n"
        "4,000 sensor inserts per query...\n"
    )
    maintenance_paid = 0.0
    inserts_total = 0
    for i in range(200):
        table = "live_events" if i % 2 == 0 else "archive_events"
        tuner.process_query(lookup(table, rng.randint(1, 50_000)))
        outcome = tuner.process_insert("live_events", count=4_000)
        maintenance_paid += outcome.maintenance_cost
        inserts_total += outcome.count

    live = [ix.name for ix in tuner.materialized_set if ix.table == "live_events"]
    archive = [
        ix.name for ix in tuner.materialized_set if ix.table == "archive_events"
    ]
    print(f"indexes on archive_events (read-only): {archive or '(none)'}")
    print(f"indexes on live_events (write-heavy):  {live or '(none)'}")

    toll = catalog.params.index_maintain_cost_per_tuple
    avoided = inserts_total * toll
    print(f"\nmaintenance actually paid: {maintenance_paid:,.0f} units")
    print(
        f"toll avoided by not indexing the hot table: "
        f"{inserts_total:,} inserts x {toll} = {avoided:,.0f} units"
    )
    print(
        "\nthe write-aware NetBenefit keeps the archive indexed while "
        "sparing the hot table the per-insert index toll."
    )


if __name__ == "__main__":
    main()
