"""Noise resilience: steady reporting traffic with ad-hoc query bursts.

A reporting dashboard issues a steady stream of well-understood queries;
occasionally a user fires a burst of unrelated ad-hoc queries.  Should
the tuner re-organize for the burst, or ride it out?  §6.2's noise
experiment shows COLT ignores short bursts and re-tunes for long ones.

The script sweeps the burst length and prints where each regime kicks
in.

Run with::

    python examples/noisy_dashboard.py
"""

from __future__ import annotations

from repro.bench.harness import run_colt, run_offline
from repro.core import ColtConfig
from repro.workload import build_catalog, noisy_workload
from repro.workload.experiments import noise_distributions

BUDGET_PAGES = 9_000.0
WARMUP = 100


def main() -> None:
    base, noise = noise_distributions()
    print(
        "dashboard traffic (Q1) with ad-hoc bursts (Q2); "
        "OFFLINE is tuned on Q1 only.\n"
    )
    print(f"{'burst length':>12} {'COLT/OFFLINE':>13} {'verdict':<30}")
    for burst in (10, 20, 40, 60, 80):
        catalog = build_catalog()
        workload = noisy_workload(
            base, noise, catalog, burst_length=burst, warmup=WARMUP, seed=0
        )
        q1_only = [
            q for q, s in zip(workload.queries, workload.source) if s == base.name
        ]
        colt = run_colt(
            build_catalog(),
            workload.queries,
            ColtConfig(storage_budget_pages=BUDGET_PAGES),
        )
        offline = run_offline(
            build_catalog(), workload.queries, BUDGET_PAGES, tuning_workload=q1_only
        )
        ratio = sum(colt.total_costs[WARMUP:]) / sum(
            offline.per_query_costs[WARMUP:]
        )
        if ratio < 1.05:
            verdict = "noise ignored (resilient)"
        elif ratio < 1.2:
            verdict = "mild disruption"
        else:
            verdict = "re-tuned mid-burst (worst band)"
        print(f"{burst:>12} {ratio:>13.3f} {verdict:<30}")

    print(
        "\nshort bursts are ignored; mid-length bursts fool the forecast "
        "window (the paper's 30-60 band);\nlong bursts are worth re-tuning "
        "for and the ratio falls back toward 1."
    )


if __name__ == "__main__":
    main()
