#!/usr/bin/env python
"""CI gate: assert a metrics snapshot recorded gain-cache hits.

Reads a JSON metrics snapshot (``--metrics-out`` format, single or
fleet-merged), sums the ``gaincache_hits_total`` samples across all
label sets, prints a small hit/miss summary, and exits non-zero when
the run produced no hits at all -- which would mean the cache was off,
broken, or starved by the smoke workload.

Usage:
    python tools/check_gaincache_hits.py fleet-smoke/metrics.json
"""

import json
import sys


def _family_total(snapshot, name):
    for family in snapshot.get("metrics", []):
        if family["name"] == name:
            return sum(sample["value"] for sample in family["samples"])
    return 0.0


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as handle:
        snapshot = json.load(handle)

    hits = _family_total(snapshot, "gaincache_hits_total")
    misses = _family_total(snapshot, "gaincache_misses_total")
    probed = hits + misses
    rate = hits / probed if probed else 0.0
    print(
        f"gaincache: {hits:.0f} hits / {misses:.0f} misses "
        f"(hit rate {rate:.1%})"
    )
    if hits <= 0:
        print(
            "FAIL: no gain-cache hits recorded -- was the run started "
            "with --gain-cache on?",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
