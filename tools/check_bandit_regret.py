#!/usr/bin/env python
"""CI gate: the bandit's regret curve must be finite and monotone.

Runs one short adversarial scenario (``drift`` by default -- the
cheapest of the four) through the exact benchmark harness
(:func:`repro.bandit.evaluate.run_scenario`) for both the bandit and
COLT, checks every cumulative observed-cost curve with
:func:`repro.bandit.evaluate.curve_is_sane` (finite, non-negative,
non-decreasing), and writes the measured curves to a JSON file for the
CI artifact.  Exits non-zero when a curve is insane or the bandit
recorded no reward samples at all (a silently dead learner would
otherwise pass on luck).

Usage:
    PYTHONPATH=src python tools/check_bandit_regret.py out.json [scenario]
"""

import json
import math
import sys

from repro.bandit.evaluate import curve_is_sane, make_tuner, run_scenario
from repro.workload.adversarial import SCENARIOS

EPOCH_LENGTH = 20
BUDGET_PAGES = 400.0


def _family_total(snapshot, name):
    for family in snapshot.get("metrics", []):
        if family["name"] == name:
            return sum(sample["value"] for sample in family["samples"])
    return 0.0


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    name = argv[2] if len(argv) == 3 else "drift"
    if name not in SCENARIOS:
        print(
            f"unknown scenario {name!r} (have: {', '.join(SCENARIOS)})",
            file=sys.stderr,
        )
        return 2

    build = SCENARIOS[name]
    results = {}
    bandit_tuner = None
    for engine in ("colt", "bandit"):
        scenario = build()
        tuner = make_tuner(
            engine,
            scenario,
            epoch_length=EPOCH_LENGTH,
            storage_budget_pages=BUDGET_PAGES,
        )
        if engine == "bandit":
            bandit_tuner = tuner
        results[engine] = run_scenario(engine, scenario, tuner=tuner)

    failures = []
    for engine, result in results.items():
        ok = curve_is_sane(result.curve)
        print(
            f"{name}/{engine}: observed cost {result.observed_cost:,.0f} "
            f"over {result.queries} queries, curve "
            f"{'sane' if ok else 'INSANE'} ({len(result.curve)} samples)"
        )
        if not ok:
            failures.append(f"{engine} curve is not finite and monotone")
        if not math.isfinite(result.observed_cost):
            failures.append(f"{engine} observed cost is not finite")

    samples = _family_total(
        bandit_tuner.metrics_snapshot(), "bandit_reward_samples_total"
    )
    print(f"{name}/bandit: {samples:.0f} reward samples")
    if samples <= 0:
        failures.append("bandit recorded no reward samples (dead learner)")

    with open(argv[1], "w") as handle:
        json.dump(
            {
                "scenario": name,
                "arms": {e: r.to_dict() for e, r in results.items()},
            },
            handle,
            indent=1,
            sort_keys=True,
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
