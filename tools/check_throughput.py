#!/usr/bin/env python
"""CI gate: validate a ``BENCH_throughput.json`` replay report.

Structural checks (always enforced):

* the report carries a ``serial`` mode with positive QPS;
* every mode reports finite, ordered latency percentiles
  (p50 <= p95 <= p99) whenever it observed any events.

Speedup gates:

* ``batched`` must reach ``--batched-min`` (default 1.2x) times the
  serial QPS.  Batching is a single-process optimization, so this gate
  is enforced regardless of the measuring host.
* ``workers`` must reach ``--workers-min`` (default 1.4x) times the
  serial QPS -- but only when the report's ``meta.cpu_cores`` shows the
  measuring host had at least 2 cores.  On a single-core host worker
  processes time-slice one CPU and can never beat serial wall-clock;
  the gate prints a SKIP instead of failing a number the hardware makes
  unreachable.  CI runners have multiple cores, so the gate is enforced
  there.

Usage:
    python tools/check_throughput.py BENCH_throughput.json
    python tools/check_throughput.py report.json --batched-min 1.2 \
        --workers-min 1.4
"""

import argparse
import json
import math
import sys

PERCENTILES = ("p50", "p95", "p99")


def _fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def check_percentiles(mode, payload):
    """Percentiles must be present, finite, and ordered. Returns error or None."""
    latency = payload.get("latency")
    if not isinstance(latency, dict):
        return f"mode {mode!r} has no latency summary"
    if payload.get("events", 0) <= 0:
        return None
    values = []
    for name in PERCENTILES:
        value = latency.get(name)
        if value is None:
            return f"mode {mode!r} is missing latency {name}"
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            return f"mode {mode!r} latency {name} is not finite: {value!r}"
        if value < 0:
            return f"mode {mode!r} latency {name} is negative: {value!r}"
        values.append(value)
    if not (values[0] <= values[1] <= values[2]):
        return f"mode {mode!r} percentiles are not ordered: {values}"
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="path to BENCH_throughput.json")
    parser.add_argument(
        "--batched-min",
        type=float,
        default=1.2,
        help="minimum batched/serial QPS ratio (default 1.2)",
    )
    parser.add_argument(
        "--workers-min",
        type=float,
        default=1.4,
        help="minimum workers/serial QPS ratio (default 1.4)",
    )
    args = parser.parse_args(argv)

    with open(args.report) as handle:
        report = json.load(handle)

    modes = report.get("modes", {})
    serial = modes.get("serial")
    if serial is None:
        return _fail("report has no 'serial' mode to compare against")
    serial_qps = serial.get("qps", 0.0)
    if not serial_qps or serial_qps <= 0:
        return _fail(f"serial QPS is not positive: {serial_qps!r}")

    for mode, payload in sorted(modes.items()):
        error = check_percentiles(mode, payload)
        if error is not None:
            return _fail(error)
        print(
            f"{mode:>12}: {payload.get('qps', 0):>12,.0f} qps  "
            f"({payload.get('events', 0):,} events)"
        )

    cpu_cores = report.get("meta", {}).get("cpu_cores")
    status = 0

    batched = modes.get("batched")
    if batched is not None:
        ratio = batched["qps"] / serial_qps
        print(f"batched/serial: {ratio:.2f}x (gate {args.batched_min:.2f}x)")
        if ratio < args.batched_min:
            status = _fail(
                f"batched speedup {ratio:.2f}x is below the "
                f"{args.batched_min:.2f}x gate"
            )
    else:
        print("batched mode absent: speedup gate not applicable")

    workers = modes.get("workers")
    if workers is not None:
        ratio = workers["qps"] / serial_qps
        print(f"workers/serial: {ratio:.2f}x (gate {args.workers_min:.2f}x)")
        if cpu_cores is None:
            status = status or _fail(
                "report meta lacks cpu_cores; cannot tell whether the "
                "workers gate is meaningful on the measuring host"
            )
        elif cpu_cores < 2:
            print(
                f"SKIP: workers gate not enforced -- measuring host had "
                f"{cpu_cores} core(s); worker processes cannot beat serial "
                "wall-clock without real parallelism"
            )
        elif ratio < args.workers_min:
            status = _fail(
                f"workers speedup {ratio:.2f}x is below the "
                f"{args.workers_min:.2f}x gate ({cpu_cores} cores)"
            )
    else:
        print("workers mode absent: speedup gate not applicable")

    if status == 0:
        print("OK: throughput report passes all applicable gates")
    return status


if __name__ == "__main__":
    sys.exit(main())
