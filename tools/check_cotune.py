#!/usr/bin/env python
"""CI gate: validate a ``BENCH_cotune.json`` co-tuning report.

Structural checks (always enforced):

* the report carries ``uniform``, ``cost`` and ``cotuned`` arms with
  finite, positive execution and total costs;
* the co-tuned arm actually co-tuned: it reports a ``cotune_state``
  with at least one boundary, every replica owning a partition, and a
  probe spend consistent with the charged routing overhead.

Ratio gates:

* ``cotuned`` execution cost must land below ``--max-exec-ratio``
  (default 1.0) times the *better* passive baseline --
  ``min(uniform, cost)`` -- i.e. steering divergence must beat both
  merely spreading the stream and merely probing it.
* The same bound applies to total cost (overheads included), so the
  win cannot be bought with unaccounted probe spend.
* ``cotuned`` configuration divergence must exceed the ``uniform``
  arm's by at least ``--min-divergence-gain`` (default 0.05): the
  cheaper fleet must be cheaper *because* its designs diverged.

Usage:
    python tools/check_cotune.py BENCH_cotune.json
    python tools/check_cotune.py report.json --max-exec-ratio 0.95
"""

import argparse
import json
import math
import sys

REQUIRED_ARMS = ("uniform", "cost", "cotuned")
COST_KEYS = ("execution_cost", "total_cost")


def _fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def check_arm(name, arm):
    """Finite positive costs and a sane divergence. Returns error or None."""
    if not isinstance(arm, dict):
        return f"arm {name!r} is not an object"
    for key in COST_KEYS:
        value = arm.get(key)
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            return f"arm {name!r} {key} is not finite: {value!r}"
        if value <= 0:
            return f"arm {name!r} {key} is not positive: {value!r}"
    if arm["total_cost"] < arm["execution_cost"]:
        return (
            f"arm {name!r} total cost {arm['total_cost']:,.0f} is below "
            f"its execution cost {arm['execution_cost']:,.0f}"
        )
    divergence = arm.get("divergence")
    if not isinstance(divergence, (int, float)) or not (
        0.0 <= divergence <= 1.0
    ):
        return f"arm {name!r} divergence is not in [0, 1]: {divergence!r}"
    return None


def check_cotune_state(arm):
    """The co-tuned arm must show real partition-specialize-route work."""
    state = arm.get("cotune_state")
    if not isinstance(state, dict):
        return "cotuned arm carries no cotune_state"
    if state.get("boundaries", 0) < 1:
        return "cotuned arm closed no co-tuning boundaries"
    replicas = arm.get("replicas", 0)
    if state.get("partitions", 0) < replicas:
        return (
            f"only {state.get('partitions', 0)} of {replicas} replicas "
            "own a partition (a replica sat idle under partition routing)"
        )
    if state.get("signatures", 0) < state.get("partitions", 0):
        return "fewer signatures than partitions: report is inconsistent"
    probe_cost = state.get("probe_cost", 0.0)
    if probe_cost > arm.get("routing_overhead", 0.0) + 1e-9:
        return (
            f"probe cost {probe_cost:,.0f} exceeds the charged routing "
            f"overhead {arm.get('routing_overhead', 0.0):,.0f} -- probe "
            "spend is not being accounted"
        )
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="path to BENCH_cotune.json")
    parser.add_argument(
        "--max-exec-ratio",
        type=float,
        default=1.0,
        help="maximum cotuned/min(baselines) cost ratio (default 1.0)",
    )
    parser.add_argument(
        "--min-divergence-gain",
        type=float,
        default=0.05,
        help="minimum divergence gain of cotuned over uniform "
        "(default 0.05)",
    )
    args = parser.parse_args(argv)

    with open(args.report) as handle:
        report = json.load(handle)

    arms = report.get("arms", {})
    for name in REQUIRED_ARMS:
        if name not in arms:
            return _fail(f"report has no {name!r} arm")
        error = check_arm(name, arms[name])
        if error is not None:
            return _fail(error)
        print(
            f"{name:>8}: exec {arms[name]['execution_cost']:>14,.0f}  "
            f"total {arms[name]['total_cost']:>14,.0f}  "
            f"divergence {arms[name]['divergence']:.2f}"
        )

    error = check_cotune_state(arms["cotuned"])
    if error is not None:
        return _fail(error)

    status = 0
    cotuned = arms["cotuned"]
    for key in COST_KEYS:
        floor = min(arms["uniform"][key], arms["cost"][key])
        ratio = cotuned[key] / floor
        print(
            f"cotuned/min(baselines) {key}: {ratio:.3f}x "
            f"(gate {args.max_exec_ratio:.2f}x)"
        )
        if ratio >= args.max_exec_ratio:
            status = _fail(
                f"cotuned {key} ratio {ratio:.3f}x is not below the "
                f"{args.max_exec_ratio:.2f}x gate"
            )

    gain = cotuned["divergence"] - arms["uniform"]["divergence"]
    print(
        f"divergence gain over uniform: {gain:+.2f} "
        f"(gate {args.min_divergence_gain:+.2f})"
    )
    if gain < args.min_divergence_gain:
        status = _fail(
            f"divergence gain {gain:+.2f} is below the "
            f"{args.min_divergence_gain:+.2f} gate -- the cost win did "
            "not come from divergent designs"
        )

    if status == 0:
        print("OK: co-tuning report passes all gates")
    return status


if __name__ == "__main__":
    sys.exit(main())
