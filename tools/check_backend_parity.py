#!/usr/bin/env python
"""CI gate: trace replay must reproduce live tuning decisions exactly.

Runs a shifting workload through COLT twice over the paper catalog:
once live on the local backend (recording every pricing answer into a
cost trace), then again on the trace backend replaying that recording
over a fresh catalog.  Every per-epoch decision -- index sets added,
dropped, materialized, the hot set, what-if spend, and budget grants --
plus the (bit-exact) execution costs must match between the two runs;
the JSON report written for the CI artifact lists each divergence
otherwise.  A divergence means the backend protocol leaked
nondeterminism into the tuning loop.

Usage:
    PYTHONPATH=src python tools/check_backend_parity.py out.json [queries]
"""

import dataclasses
import json
import sys

from repro.backend.local import LocalBackend
from repro.backend.trace import CostTraceRecorder, TraceBackend
from repro.bench.tracing import trace_run
from repro.core.config import ColtConfig
from repro.workload import build_catalog, shifting_workload
from repro.workload.experiments import phase_distributions

EPOCH_FIELDS = (
    "added",
    "dropped",
    "materialized",
    "hot",
    "whatif_used",
    "budget_granted",
    "execution_cost",
    "total_cost",
)


def _workload(queries):
    catalog = build_catalog()
    # Two phases are enough to force hibernation, wake-up, and
    # re-tuning -- the decision sequence replay must reproduce.
    phases = phase_distributions()[:2]
    workload = shifting_workload(
        phases,
        catalog,
        phase_length=max(20, queries // 2),
        transition=10,
        seed=0,
    )
    return catalog, list(workload.queries)[:queries]


def _diffs(live, replay):
    diffs = []
    if len(live.epochs) != len(replay.epochs):
        diffs.append(
            {
                "field": "epoch_count",
                "live": len(live.epochs),
                "replay": len(replay.epochs),
            }
        )
    for a, b in zip(live.epochs, replay.epochs):
        for field in EPOCH_FIELDS:
            if getattr(a, field) != getattr(b, field):
                diffs.append(
                    {
                        "epoch": a.epoch,
                        "field": field,
                        "live": getattr(a, field),
                        "replay": getattr(b, field),
                    }
                )
    return diffs


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    out_path = argv[1]
    queries = int(argv[2]) if len(argv) == 3 else 120
    config = ColtConfig(epoch_length=20, storage_budget_pages=6000.0)

    live_catalog, workload = _workload(queries)
    recorder = CostTraceRecorder()
    live = trace_run(
        live_catalog,
        workload,
        config,
        backend=LocalBackend(live_catalog, recorder=recorder),
    )

    replay_catalog, _ = _workload(queries)
    replay_backend = TraceBackend(replay_catalog, recorder.trace)
    try:
        replay = trace_run(replay_catalog, workload, config, backend=replay_backend)
        diffs = _diffs(live, replay)
        replay_epochs = len(replay.epochs)
    except Exception as exc:  # a TraceMissError IS a divergence
        diffs = [{"field": "replay_error", "live": None, "replay": str(exc)}]
        replay_epochs = 0

    report = {
        "queries": len(workload),
        "config": dataclasses.asdict(config),
        "trace_entries": len(recorder.trace),
        "replayed_lookups": replay_backend.replayed,
        "live_epochs": len(live.epochs),
        "replay_epochs": replay_epochs,
        "divergences": diffs,
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
    print(
        f"backend parity: {len(workload)} queries, "
        f"{len(recorder.trace)} trace entries, "
        f"{len(live.epochs)} epochs, {len(diffs)} divergence(s)"
    )

    if not live.epochs:
        print("no epochs completed; workload too short to gate on", file=sys.stderr)
        return 1
    if diffs:
        for diff in diffs[:10]:
            print(f"  divergence: {diff}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
